package branch

import (
	"testing"

	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

func condBranch(pc uint64, taken bool) *isa.Inst {
	return &isa.Inst{Op: isa.Branch, Kind: isa.BrCond, PC: pc, Taken: taken, Target: pc + 64}
}

func runPattern(p Predictor, pcs []uint64, pattern func(i int, pc uint64) bool, n int) float64 {
	mis := 0
	total := 0
	for i := 0; i < n; i++ {
		for _, pc := range pcs {
			m, _ := p.Access(condBranch(pc, pattern(i, pc)))
			if m {
				mis++
			}
			total++
		}
	}
	return float64(mis) / float64(total)
}

func TestBiasedBranchLearned(t *testing.T) {
	for _, p := range []Predictor{NewTwoLevel(), NewHybrid()} {
		mr := runPattern(p, []uint64{0x1000}, func(i int, pc uint64) bool { return true }, 1000)
		if mr > 0.02 {
			t.Errorf("%s: always-taken branch mispredicted %.1f%%", p.Name(), mr*100)
		}
	}
}

func TestLoopPredictorCatchesFixedTrips(t *testing.T) {
	// A loop branch taken 15 times then not taken, repeatedly: the
	// hybrid's loop predictor should approach zero mispredictions,
	// while the two-level predictor keeps missing the exits.
	pattern := func(i int, pc uint64) bool { return i%16 != 15 }
	hy := NewHybrid()
	// Warm up, then measure.
	runPattern(hy, []uint64{0x2000}, pattern, 64)
	hmr := runPattern(hy, []uint64{0x2000}, pattern, 1600)
	if hmr > 0.01 {
		t.Errorf("hybrid missed fixed-trip loop: %.2f%%", hmr*100)
	}

	hyNoLoop := NewHybridOpt(false)
	runPattern(hyNoLoop, []uint64{0x2000}, pattern, 64)
	nmr := runPattern(hyNoLoop, []uint64{0x2000}, pattern, 1600)
	// Without the loop predictor gshare can still learn short periodic
	// patterns; the loop predictor must not be worse.
	if hmr > nmr {
		t.Errorf("loop predictor made things worse: %.3f vs %.3f", hmr, nmr)
	}
}

func TestRandomBranchesHurtBoth(t *testing.T) {
	r := xrand.New(9)
	for _, p := range []Predictor{NewTwoLevel(), NewHybrid()} {
		mr := runPattern(p, []uint64{0x3000}, func(i int, pc uint64) bool {
			return r.Bool(0.5)
		}, 4000)
		if mr < 0.3 {
			t.Errorf("%s: random branches predicted too well (%.1f%%)", p.Name(), mr*100)
		}
	}
}

func TestHybridBeatsTwoLevelOnAliasing(t *testing.T) {
	// Many branch sites with per-site-stable outcomes: the Atom-class
	// 1K-entry table aliases, the Xeon-class 16K-entry table copes.
	sites := make([]uint64, 3000)
	for i := range sites {
		sites[i] = 0x10000 + uint64(i)*4
	}
	outcome := func(i int, pc uint64) bool { return xrand.Hash64(pc)&1 == 0 }
	atom := runPattern(NewTwoLevel(), sites, outcome, 8)
	xeon := runPattern(NewHybrid(), sites, outcome, 8)
	if xeon >= atom {
		t.Errorf("hybrid (%.3f) not better than two-level (%.3f) under aliasing", xeon, atom)
	}
}

func TestReturnAddressStack(t *testing.T) {
	for _, p := range []Predictor{NewTwoLevel(), NewHybrid()} {
		// call from 0x100 -> 0x500; ret to 0x104.
		p.Access(&isa.Inst{Op: isa.Branch, Kind: isa.BrCall, PC: 0x100, Taken: true, Target: 0x500})
		mis, _ := p.Access(&isa.Inst{Op: isa.Branch, Kind: isa.BrRet, PC: 0x520, Taken: true, Target: 0x104})
		if mis {
			t.Errorf("%s: paired call/ret mispredicted", p.Name())
		}
		// Unmatched return target.
		p.Access(&isa.Inst{Op: isa.Branch, Kind: isa.BrCall, PC: 0x100, Taken: true, Target: 0x500})
		mis, _ = p.Access(&isa.Inst{Op: isa.Branch, Kind: isa.BrRet, PC: 0x520, Taken: true, Target: 0x999})
		if !mis {
			t.Errorf("%s: wrong return target predicted correctly", p.Name())
		}
	}
}

func TestIndirectMonomorphicLearned(t *testing.T) {
	h := NewHybrid()
	mis := 0
	for i := 0; i < 100; i++ {
		m, _ := h.Access(&isa.Inst{Op: isa.Branch, Kind: isa.BrIndirectJump, PC: 0x700, Taken: true, Target: 0x9000})
		if m {
			mis++
		}
	}
	if mis > 1 {
		t.Errorf("monomorphic indirect jump mispredicted %d times", mis)
	}
}

func TestBTBRedirectOnColdTarget(t *testing.T) {
	p := NewTwoLevel()
	// Train direction taken at a fresh site each time: the direction
	// may be right but the target is unknown -> redirect.
	var redirects int
	for i := 0; i < 300; i++ {
		pc := 0x8000 + uint64(i)*4
		p.Access(condBranch(pc, true)) // trains
		_, r := p.Access(condBranch(pc, true))
		if r {
			redirects++
		}
		_ = r
	}
	if p.Stats().BTBMisses == 0 {
		t.Fatal("no BTB misses recorded on cold taken branches")
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := NewHybrid()
	for i := 0; i < 10; i++ {
		h.Access(condBranch(0x100, i%2 == 0)) // alternating
	}
	st := h.Stats()
	if st.Branches != 10 {
		t.Fatalf("Branches = %d, want 10", st.Branches)
	}
	if st.Mispredicts != st.MisCond+st.MisRet+st.MisInd {
		t.Fatalf("mispredict breakdown does not sum: %+v", st)
	}
	if h.Penalty() != 12 {
		t.Fatalf("hybrid penalty = %d, want 12", h.Penalty())
	}
	if NewTwoLevel().Penalty() != 15 {
		t.Fatal("two-level penalty != 15 (paper Table 4)")
	}
}
