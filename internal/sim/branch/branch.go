// Package branch implements the two branch-prediction organizations
// the paper contrasts in Table 4:
//
//   - TwoLevel: the Intel Atom D510 class — a two-level adaptive
//     predictor with a global history table, a 128-entry BTB, no
//     indirect predictor, 15-cycle misprediction penalty.
//   - Hybrid: the Intel Xeon E5645 class — a hybrid predictor combining
//     a two-level (gshare) component with a bimodal component and a
//     loop counter, an indirect-target predictor, an 8192-entry BTB,
//     and a 12-cycle penalty (the paper reports 11-13).
//
// The paper measures 7.8% average misprediction on the Atom and 2.8%
// on the Xeon for the representative big data workloads; the ablation
// bench (BenchmarkAblationLoopPredictor) shows how much of that gap
// the loop counter and history length each contribute.
package branch

import "repro/internal/sim/isa"

// Predictor consumes each branch and reports whether the front end
// mispredicted it (wrong direction or unknown/wrong target).
type Predictor interface {
	// Name identifies the organization.
	Name() string
	// Access predicts and then trains on one branch instruction. It
	// returns mispredict when the direction (or an indirect/return
	// target) was wrong — a full pipeline flush — and redirect when
	// only the BTB lacked a taken branch's target, which costs a short
	// decode-time fetch bubble.
	Access(i *isa.Inst) (mispredict, redirect bool)
	// Stats returns cumulative predictor statistics.
	Stats() Stats
	// Penalty is the misprediction penalty in cycles.
	Penalty() int
}

// Stats are cumulative counters exposed for the metric vector.
type Stats struct {
	// Branches counts all control transfers seen.
	Branches uint64
	// Mispredicts counts direction or target mispredictions.
	Mispredicts uint64
	// BTBMisses counts taken branches whose target was absent from
	// the BTB.
	BTBMisses uint64
	// Indirect counts indirect calls/jumps seen.
	Indirect uint64
	// MisCond, MisRet, MisInd break mispredictions down by branch
	// flavour (conditional direction, return, indirect target).
	MisCond, MisRet, MisInd uint64
}

// btb is a direct-mapped branch target buffer.
type btb struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

func newBTB(entries int) *btb {
	return &btb{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		mask:    uint64(entries - 1),
	}
}

func (b *btb) lookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & b.mask
	if b.tags[i] == pc+1 {
		return b.targets[i], true
	}
	return 0, false
}

func (b *btb) insert(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc + 1
	b.targets[i] = target
}

// ras is a return address stack.
type ras struct {
	stack []uint64
	top   int
}

func newRAS(depth int) *ras { return &ras{stack: make([]uint64, depth)} }

func (r *ras) push(addr uint64) {
	r.stack[r.top%len(r.stack)] = addr
	r.top++
}

func (r *ras) pop() (uint64, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.stack[r.top%len(r.stack)], true
}

// counter updates a 2-bit saturating counter.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

// TwoLevel is the Atom-D510-class organization.
type TwoLevel struct {
	ghr     uint64
	histLen uint
	pht     []uint8
	mask    uint64
	btb     *btb
	ras     *ras
	penalty int
	stats   Stats
}

// NewTwoLevel builds the Atom-class predictor: 8 bits of global
// history, a 1024-entry pattern history table, 128-entry BTB,
// 8-deep RAS, 15-cycle penalty.
func NewTwoLevel() *TwoLevel {
	return NewTwoLevelSized(8, 1024, 128, 15)
}

// NewTwoLevelSized builds a two-level predictor with explicit history
// length, PHT entries (power of two), BTB entries (power of two) and
// penalty; used by the ablation benches.
func NewTwoLevelSized(histBits uint, phtEntries, btbEntries, penalty int) *TwoLevel {
	p := &TwoLevel{
		histLen: histBits,
		pht:     make([]uint8, phtEntries),
		mask:    uint64(phtEntries - 1),
		btb:     newBTB(btbEntries),
		ras:     newRAS(8),
		penalty: penalty,
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	return p
}

// Name implements Predictor.
func (p *TwoLevel) Name() string { return "two-level(D510)" }

// Penalty implements Predictor.
func (p *TwoLevel) Penalty() int { return p.penalty }

// Stats implements Predictor.
func (p *TwoLevel) Stats() Stats { return p.stats }

// Access implements Predictor.
func (p *TwoLevel) Access(i *isa.Inst) (bool, bool) {
	p.stats.Branches++
	switch i.Kind {
	case isa.BrCond:
		idx := ((i.PC >> 2) ^ p.ghr) & p.mask
		pred := p.pht[idx] >= 2
		p.pht[idx] = bump(p.pht[idx], i.Taken)
		p.ghr = ((p.ghr << 1) | b2u(i.Taken)) & ((1 << p.histLen) - 1)
		mis := pred != i.Taken
		redirect := false
		if i.Taken {
			if tgt, ok := p.btb.lookup(i.PC); !ok || tgt != i.Target {
				p.stats.BTBMisses++
				redirect = true
			}
			p.btb.insert(i.PC, i.Target)
		}
		if mis {
			p.stats.Mispredicts++
			p.stats.MisCond++
		}
		return mis, redirect
	case isa.BrCall:
		p.ras.push(i.PC + isa.InstBytes)
		p.btb.insert(i.PC, i.Target)
		return false, false
	case isa.BrRet:
		tgt, ok := p.ras.pop()
		if !ok || tgt != i.Target {
			p.stats.Mispredicts++
			p.stats.MisRet++
			return true, false
		}
		return false, false
	case isa.BrIndirectCall, isa.BrIndirectJump:
		p.stats.Indirect++
		if i.Kind == isa.BrIndirectCall {
			p.ras.push(i.PC + isa.InstBytes)
		}
		// No indirect predictor: only the BTB's last target.
		tgt, ok := p.btb.lookup(i.PC)
		p.btb.insert(i.PC, i.Target)
		if !ok || tgt != i.Target {
			p.stats.BTBMisses++
			p.stats.Mispredicts++
			p.stats.MisInd++
			return true, false
		}
		return false, false
	default: // unconditional direct: decoder resolves the target
		p.btb.insert(i.PC, i.Target)
		return false, false
	}
}

// loopEntry tracks one loop branch for the loop predictor.
type loopEntry struct {
	tag   uint64
	limit uint32
	count uint32
	conf  uint8
}

// Hybrid is the Xeon-E5645-class organization.
type Hybrid struct {
	ghr      uint64
	histLen  uint
	gshare   []uint8
	bimodal  []uint8
	chooser  []uint8
	mask     uint64
	loops    []loopEntry
	loopMask uint64
	useLoop  bool
	itc      *btb // indirect target cache
	btb      *btb
	ras      *ras
	penalty  int
	stats    Stats
}

// NewHybrid builds the Xeon-class predictor: 12 bits of history,
// 4096-entry gshare/bimodal/chooser tables, a 64-entry loop predictor,
// a 512-entry indirect target cache, an 8192-entry BTB, a 16-deep RAS
// and a 12-cycle penalty.
func NewHybrid() *Hybrid {
	return NewHybridOpt(true)
}

// NewHybridOpt allows disabling the loop predictor (ablation).
func NewHybridOpt(loopPredictor bool) *Hybrid {
	const tableEntries = 16384
	h := &Hybrid{
		histLen:  14,
		gshare:   make([]uint8, tableEntries),
		bimodal:  make([]uint8, tableEntries),
		chooser:  make([]uint8, tableEntries),
		mask:     tableEntries - 1,
		loops:    make([]loopEntry, 64),
		loopMask: 63,
		useLoop:  loopPredictor,
		itc:      newBTB(512),
		btb:      newBTB(8192),
		ras:      newRAS(16),
		penalty:  12,
	}
	for i := range h.gshare {
		h.gshare[i] = 1
		h.bimodal[i] = 1
		h.chooser[i] = 1 // start from the bimodal component
	}
	return h
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return "hybrid(E5645)" }

// Penalty implements Predictor.
func (h *Hybrid) Penalty() int { return h.penalty }

// Stats implements Predictor.
func (h *Hybrid) Stats() Stats { return h.stats }

// Access implements Predictor.
func (h *Hybrid) Access(i *isa.Inst) (bool, bool) {
	h.stats.Branches++
	switch i.Kind {
	case isa.BrCond:
		mis, redirect := h.cond(i)
		if mis {
			h.stats.Mispredicts++
			h.stats.MisCond++
		}
		return mis, redirect
	case isa.BrCall:
		h.ras.push(i.PC + isa.InstBytes)
		h.btb.insert(i.PC, i.Target)
		return false, false
	case isa.BrRet:
		tgt, ok := h.ras.pop()
		if !ok || tgt != i.Target {
			h.stats.Mispredicts++
			h.stats.MisRet++
			return true, false
		}
		return false, false
	case isa.BrIndirectCall, isa.BrIndirectJump:
		h.stats.Indirect++
		if i.Kind == isa.BrIndirectCall {
			h.ras.push(i.PC + isa.InstBytes)
		}
		tgt, ok := h.itc.lookup(i.PC)
		h.itc.insert(i.PC, i.Target)
		if !ok || tgt != i.Target {
			h.stats.BTBMisses++
			h.stats.Mispredicts++
			h.stats.MisInd++
			return true, false
		}
		return false, false
	default:
		h.btb.insert(i.PC, i.Target)
		return false, false
	}
}

func (h *Hybrid) cond(i *isa.Inst) (bool, bool) {
	pcIdx := (i.PC >> 2) & h.mask
	gIdx := ((i.PC >> 2) ^ h.ghr) & h.mask

	gPred := h.gshare[gIdx] >= 2
	bPred := h.bimodal[pcIdx] >= 2
	pred := bPred
	if h.chooser[pcIdx] >= 2 {
		pred = gPred
	}

	// Loop predictor override: when a loop branch has a confidently
	// learned trip count, predict the exit exactly.
	var le *loopEntry
	if h.useLoop {
		le = &h.loops[(i.PC>>2)&h.loopMask]
		if le.tag == i.PC+1 && le.conf >= 2 && le.limit > 0 {
			// Predict taken for the first `limit` executions of the
			// loop branch, not-taken on the exit.
			pred = le.count < le.limit
		}
	}

	// Train direction tables.
	if gPred != bPred {
		h.chooser[pcIdx] = bump(h.chooser[pcIdx], gPred == i.Taken)
	}
	h.gshare[gIdx] = bump(h.gshare[gIdx], i.Taken)
	h.bimodal[pcIdx] = bump(h.bimodal[pcIdx], i.Taken)
	h.ghr = ((h.ghr << 1) | b2u(i.Taken)) & ((1 << h.histLen) - 1)

	// Train loop predictor.
	if h.useLoop {
		if le.tag != i.PC+1 {
			*le = loopEntry{tag: i.PC + 1}
		}
		if i.Taken {
			le.count++
			if le.limit > 0 && le.count > le.limit {
				le.conf = 0
				le.limit = 0
			}
		} else {
			if le.limit == le.count && le.limit > 0 {
				if le.conf < 3 {
					le.conf++
				}
			} else {
				le.limit = le.count
				le.conf = 0
			}
			le.count = 0
		}
	}

	mis := pred != i.Taken
	redirect := false
	if i.Taken {
		if tgt, ok := h.btb.lookup(i.PC); !ok || tgt != i.Target {
			h.stats.BTBMisses++
			// A cold target costs a decode-time fetch bubble, not a
			// full flush: the front end recovers as soon as the
			// decoder computes the direct target.
			redirect = true
		}
		h.btb.insert(i.PC, i.Target)
	}
	return mis, redirect
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
