package trace

import (
	"reflect"
	"testing"

	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

// seqProbe records the instruction sequence it observes, via either
// delivery path, plus how it was delivered.
type seqProbe struct {
	insts  []isa.Inst
	blocks []int
}

func (s *seqProbe) Inst(i *isa.Inst) {
	s.insts = append(s.insts, *i)
	s.blocks = append(s.blocks, 1)
}

func (s *seqProbe) InstBlock(block []isa.Inst) {
	s.insts = append(s.insts, block...)
	s.blocks = append(s.blocks, len(block))
}

// emitMixed drives a representative emission mix: straight-line ops,
// loads/stores, loops, calls, stream emission.
func emitMixed(e *Emitter, l *mem.Layout) {
	r := NewRoutine(l, "k", 16<<10)
	sub := NewRoutine(l, "sub", 4<<10)
	e.Enter(r)
	base := l.Alloc(1 << 16)
	st := Stream{
		Mix: Mix{Load: 0.25, Store: 0.1, Branch: 0.15, IntAddr: 0.2, Taken: 0.4, Chain: 0.3},
		Pri: NewWalk(base, 1<<16, 8),
		Rng: xrand.New(7),
	}
	top := e.Here()
	for e.OK() {
		v := e.Load(base, 8, isa.NoReg)
		e.Store(base+64, 8, v, isa.NoReg)
		e.IntN(3)
		e.Call(sub)
		e.Int(isa.IntMul, v, isa.NoReg)
		e.Ret()
		st.Emit(e, r, e.Emitted()%r.Size, 40)
		e.Loop(top, e.OK(), v)
	}
	e.Flush()
}

// TestBlockDeliveryMatchesSerial proves the block emitter delivers the
// exact per-instruction sequence for every block size, including sizes
// that divide the stream exactly and sizes whose final block is
// truncated by the budget.
func TestBlockDeliveryMatchesSerial(t *testing.T) {
	const budget = 1000
	ref := &seqProbe{}
	emitMixed(NewEmitter(Unblocked(ref), budget), mem.NewLayout())
	if len(ref.insts) < budget {
		t.Fatalf("reference emitted only %d instructions", len(ref.insts))
	}
	for _, bs := range []int{1, 7, 100, 256, DefaultBlockSize} {
		got := &seqProbe{}
		emitMixed(NewBlockEmitter(got, budget, bs), mem.NewLayout())
		if !reflect.DeepEqual(ref.insts, got.insts) {
			t.Fatalf("block size %d: delivered sequence differs from serial", bs)
		}
		for bi, n := range got.blocks[:len(got.blocks)-1] {
			if n != bs {
				t.Fatalf("block size %d: interior block %d has %d instructions", bs, bi, n)
			}
		}
		if tail := got.blocks[len(got.blocks)-1]; tail > bs {
			t.Fatalf("block size %d: tail block has %d instructions", bs, tail)
		}
	}
}

// TestBlockEmitterFallsBackPerInst checks a probe without a block path
// is driven per-instruction by NewBlockEmitter.
func TestBlockEmitterFallsBackPerInst(t *testing.T) {
	got := &seqProbe{}
	emitMixed(NewBlockEmitter(Unblocked(got), 500, 64), mem.NewLayout())
	for _, n := range got.blocks {
		if n != 1 {
			t.Fatal("fallback path delivered a block")
		}
	}
	if len(got.insts) < 500 {
		t.Fatalf("only %d instructions delivered", len(got.insts))
	}
}

// TestFlushIdempotent checks Flush delivers the partial block once and
// only once.
func TestFlushIdempotent(t *testing.T) {
	p := &seqProbe{}
	e := NewBlockEmitter(p, 10, 64)
	l := mem.NewLayout()
	r := NewRoutine(l, "k", 4<<10)
	e.Enter(r)
	e.IntN(5)
	if len(p.insts) != 0 {
		t.Fatal("partial block delivered before Flush")
	}
	e.Flush()
	e.Flush()
	if len(p.insts) != 5 || len(p.blocks) != 1 {
		t.Fatalf("after double Flush: %d insts in %d blocks", len(p.insts), len(p.blocks))
	}
}

// TestCountProbeBlockPath checks the CountProbe adapter sees identical
// tallies through both paths.
func TestCountProbeBlockPath(t *testing.T) {
	serial, blocked := &CountProbe{}, &CountProbe{}
	emitMixed(NewEmitter(Unblocked(serial), 2000), mem.NewLayout())
	emitMixed(NewBlockEmitter(blocked, 2000, 33), mem.NewLayout())
	if *serial != *blocked {
		t.Fatalf("counts differ: serial %+v blocked %+v", serial, blocked)
	}
}

// TestMultiProbeBlockFanOut checks MultiProbe hands blocks to members
// with a block path and instructions to members without one, and that
// both see the same stream.
func TestMultiProbeBlockFanOut(t *testing.T) {
	blocky := &seqProbe{}
	legacy := &seqProbe{}
	mp := MultiProbe{blocky, Unblocked(legacy)}
	emitMixed(NewBlockEmitter(mp, 300, 50), mem.NewLayout())
	if !reflect.DeepEqual(blocky.insts, legacy.insts) {
		t.Fatal("fan-out members saw different streams")
	}
	if blocky.blocks[0] != 50 {
		t.Fatalf("block member got %d-instruction delivery", blocky.blocks[0])
	}
	if legacy.blocks[0] != 1 {
		t.Fatal("legacy member was handed a block")
	}
}
