package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
	"repro/internal/xrand"
)

type recorder struct {
	insts []isa.Inst
}

func (r *recorder) Inst(i *isa.Inst) { r.insts = append(r.insts, *i) }

func TestBudget(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	e := NewEmitter(rec, 10)
	e.Enter(NewRoutine(l, "k", 4096))
	for e.OK() {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
	if e.Emitted() != 10 || len(rec.insts) != 10 {
		t.Fatalf("emitted %d/%d, want 10", e.Emitted(), len(rec.insts))
	}
}

func TestPCsAdvanceWithinRoutine(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	r := NewRoutine(l, "k", 4096)
	e := NewEmitter(rec, 100)
	e.Enter(r)
	for i := 0; i < 50; i++ {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
	for i, inst := range rec.insts {
		if !r.Contains(inst.PC) {
			t.Fatalf("inst %d PC %#x outside routine [%#x,%#x)", i, inst.PC, r.Base, r.End())
		}
		if i > 0 && inst.PC != rec.insts[i-1].PC+isa.InstBytes {
			t.Fatalf("PC not sequential at %d", i)
		}
	}
}

func TestPCWrapsInRoutine(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	r := NewRoutine(l, "tiny", 16) // 4 instructions
	e := NewEmitter(rec, 10)
	e.Enter(r)
	for i := 0; i < 10; i++ {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
	for i, inst := range rec.insts {
		if !r.Contains(inst.PC) {
			t.Fatalf("inst %d PC %#x escaped tiny routine", i, inst.PC)
		}
	}
}

func TestLoopReturnsToLabel(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	e := NewEmitter(rec, 100)
	e.Enter(NewRoutine(l, "k", 4096))
	top := e.Here()
	var bodyPCs []uint64
	for i := 0; i < 3; i++ {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
		bodyPCs = append(bodyPCs, rec.insts[len(rec.insts)-1].PC)
		e.Loop(top, i+1 < 3, isa.NoReg)
	}
	if bodyPCs[0] != bodyPCs[1] || bodyPCs[1] != bodyPCs[2] {
		t.Fatalf("loop body PCs differ across iterations: %#x %#x %#x",
			bodyPCs[0], bodyPCs[1], bodyPCs[2])
	}
}

func TestCallRetPairing(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	a := NewRoutine(l, "a", 4096)
	b := NewRoutine(l, "b", 4096)
	e := NewEmitter(rec, 100)
	e.Enter(a)
	e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	retTo := e.PC() + isa.InstBytes // call occupies one slot
	e.Call(b)
	if e.Routine() != b || e.PC() != b.Base {
		t.Fatal("Call did not enter the callee at its base")
	}
	e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	e.Ret()
	if e.Routine() != a || e.PC() != retTo {
		t.Fatalf("Ret returned to %#x in %v, want %#x in a", e.PC(), e.Routine().Name, retTo)
	}
	if e.Depth() != 0 {
		t.Fatalf("call depth %d after balanced call/ret", e.Depth())
	}
}

func TestIfEmissionCountEnforced(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	e := NewEmitter(rec, 100)
	e.Enter(NewRoutine(l, "k", 4096))
	defer func() {
		if recover() == nil {
			t.Fatal("If with wrong block size did not panic")
		}
	}()
	e.If(true, 2, func() {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg) // only 1 of promised 2
	})
}

func TestIfSkipsAlignPCs(t *testing.T) {
	run := func(cond bool) uint64 {
		rec := &recorder{}
		l := mem.NewLayout()
		e := NewEmitter(rec, 100)
		e.Enter(NewRoutine(l, "k", 4096))
		e.If(cond, 2, func() {
			e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
			e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
		})
		return e.PC()
	}
	if run(true) != run(false) {
		t.Fatal("If paths do not rejoin at the same PC")
	}
}

func TestPosRestore(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	a := NewRoutine(l, "a", 4096)
	b := NewRoutine(l, "b", 4096)
	e := NewEmitter(rec, 100)
	e.Enter(a)
	e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	p := e.Pos()
	st := Stream{Mix: Mix{Load: 0.3, Branch: 0.2, Taken: 0.3},
		Pri: NewWalk(mem.HeapBase, 4096, 8), Rng: xrand.New(1)}
	st.Emit(e, b, 0, 20)
	e.Restore(p)
	e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	last := rec.insts[len(rec.insts)-1]
	if !a.Contains(last.PC) {
		t.Fatal("Restore did not return to the saved routine")
	}
}

func TestStreamMixApproximation(t *testing.T) {
	rec := &recorder{}
	l := mem.NewLayout()
	r := NewRoutine(l, "fw", 256<<10)
	e := NewEmitter(rec, 60000)
	st := Stream{
		Mix: Mix{Load: 0.3, Store: 0.1, Branch: 0.2, IntAddr: 0.2, Taken: 0.3},
		Pri: NewWalk(mem.HeapBase, 1<<20, 16),
		Rng: xrand.New(7),
	}
	st.Emit(e, r, 0, 50000)
	var c CountProbe
	for i := range rec.insts {
		c.Inst(&rec.insts[i])
	}
	frac := func(op isa.Op) float64 { return float64(c.ByOp[op]) / float64(c.Total) }
	if f := frac(isa.Load); f < 0.25 || f > 0.35 {
		t.Fatalf("load fraction %.3f, want ~0.30", f)
	}
	if f := frac(isa.Branch); f < 0.15 || f > 0.25 {
		t.Fatalf("branch fraction %.3f, want ~0.20", f)
	}
}

func TestStreamDeterministicPerPC(t *testing.T) {
	// Two emissions over the same window must produce the same opcode
	// sequence (class is a pure function of PC).
	get := func() []isa.Op {
		rec := &recorder{}
		l := mem.NewLayout()
		r := NewRoutine(l, "fw", 64<<10)
		e := NewEmitter(rec, 2000)
		st := Stream{
			Mix: Mix{Load: 0.3, Store: 0.1, Branch: 0.2, IntAddr: 0.2, Taken: 0.3},
			Pri: NewWalk(mem.HeapBase, 1<<20, 16),
			Rng: xrand.New(99),
		}
		st.Emit(e, r, 0, 1000)
		ops := make([]isa.Op, len(rec.insts))
		for i := range rec.insts {
			ops[i] = rec.insts[i].Op
		}
		return ops
	}
	a, b := get(), get()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("opcode stream diverged at %d", i)
		}
	}
}

func TestWalkBounds(t *testing.T) {
	f := func(seed uint64, random bool) bool {
		r := xrand.New(seed)
		var w *Walk
		if random {
			w = NewRandomWalk(1<<30, 4096)
		} else {
			w = NewWalk(1<<30, 4096, 16)
		}
		for i := 0; i < 200; i++ {
			a := w.Next(r)
			if a < 1<<30 || a >= (1<<30)+4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClusterWalkStaysInRegion(t *testing.T) {
	r := xrand.New(5)
	w := NewClusterWalk(1<<30, 1<<20, 256, 16)
	for i := 0; i < 10000; i++ {
		a := w.Next(r)
		if a < 1<<30 || a >= (1<<30)+(1<<20)+256*16 {
			t.Fatalf("cluster walk escaped region: %#x", a)
		}
	}
}

func TestMultiProbeFansOut(t *testing.T) {
	a, b := &CountProbe{}, &CountProbe{}
	mp := MultiProbe{a, b}
	inst := isa.Inst{Op: isa.Load}
	mp.Inst(&inst)
	if a.Total != 1 || b.Total != 1 {
		t.Fatal("MultiProbe did not fan out")
	}
}
