// Package trace connects instrumented workload kernels to the
// micro-architecture models.
//
// A kernel does its real computation on ordinary Go values, and in the
// same pass narrates the machine-level work through an Emitter: one
// call per dynamic instruction, carrying the instruction class, the
// instruction address (from a simulated code Routine), the data address
// (from the simulated heap) and the register dependencies. The stream
// of isa.Inst records drives the cache, TLB, branch-predictor and
// pipeline models, which implement the Probe interface.
package trace

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/mem"
)

// Probe consumes a dynamic instruction stream. Implementations must not
// retain the *isa.Inst across calls: emitters reuse the record.
type Probe interface {
	Inst(i *isa.Inst)
}

// BlockProbe is the batched delivery path: the emitter accumulates
// instructions into a fixed-size block and hands the whole block over
// in one call. Blocks only change *when* a probe observes the stream,
// never *what* it observes — the concatenation of all delivered blocks
// is exactly the per-instruction sequence, so any probe implementing
// both interfaces must produce bit-identical state either way.
// Implementations must not retain the slice across calls: emitters
// reuse the block buffer.
type BlockProbe interface {
	InstBlock(block []isa.Inst)
}

// DefaultBlockSize is the emitter's block buffer size (instructions)
// when a BlockProbe consumer doesn't pick one. Sized so the buffer
// (~160 KB) plus one cache model's hot tag arrays fit the host L2 —
// large enough to amortize per-block decode and fan-out, small enough
// that replaying a block against one simulated cache at a time stays
// cache-resident on the host.
const DefaultBlockSize = 4096

// DeliverBlock feeds one block to p, using its bulk path when it has
// one and falling back to per-instruction delivery otherwise — the
// adapter that lets block emitters drive legacy probes unchanged.
func DeliverBlock(p Probe, block []isa.Inst) {
	if bp, ok := p.(BlockProbe); ok {
		bp.InstBlock(block)
		return
	}
	for i := range block {
		p.Inst(&block[i])
	}
}

// Unblocked returns a view of p without its block path: an emitter
// driving the result always delivers per-instruction, even when p
// implements BlockProbe. It is the retained serial reference the
// block-replay equivalence tests and benchmarks compare against.
func Unblocked(p Probe) Probe { return unblocked{p} }

type unblocked struct{ p Probe }

func (u unblocked) Inst(i *isa.Inst) { u.p.Inst(i) }

// MultiProbe fans one instruction stream out to several probes
// (used by the cache-size sweep experiments).
type MultiProbe []Probe

// Inst implements Probe.
func (m MultiProbe) Inst(i *isa.Inst) {
	for _, p := range m {
		p.Inst(i)
	}
}

// InstBlock implements BlockProbe: each member gets the block through
// its own bulk path when it has one.
func (m MultiProbe) InstBlock(block []isa.Inst) {
	for _, p := range m {
		DeliverBlock(p, block)
	}
}

// CountProbe counts instructions by class; useful in tests.
type CountProbe struct {
	Total  uint64
	ByOp   [isa.NumOps]uint64
	Taken  uint64
	Memory uint64
}

// Inst implements Probe.
func (c *CountProbe) Inst(i *isa.Inst) {
	c.Total++
	c.ByOp[i.Op]++
	if i.Op == isa.Branch && i.Taken {
		c.Taken++
	}
	if i.Op.IsMem() {
		c.Memory++
	}
}

// InstBlock implements BlockProbe.
func (c *CountProbe) InstBlock(block []isa.Inst) {
	for i := range block {
		c.Inst(&block[i])
	}
}

// Routine is a contiguous region of simulated code. Kernels and stack
// models allocate Routines from a mem.Layout and emit instructions
// whose PCs advance through the region, so the instruction-cache and
// footprint models see realistic text-segment behaviour.
type Routine struct {
	// Name identifies the routine in reports and tests.
	Name string
	// Base is the first instruction address.
	Base uint64
	// Size is the region size in bytes.
	Size uint64
}

// End returns one past the last valid instruction address.
func (r *Routine) End() uint64 { return r.Base + r.Size }

// Contains reports whether pc falls inside the routine.
func (r *Routine) Contains(pc uint64) bool {
	return pc >= r.Base && pc < r.Base+r.Size
}

// NewRoutine reserves a code region of size bytes from the layout.
func NewRoutine(l *mem.Layout, name string, size uint64) *Routine {
	if size < isa.InstBytes {
		size = isa.InstBytes
	}
	return &Routine{Name: name, Base: l.Code(size), Size: size}
}

// Label is a recorded code position used as a branch target.
type Label struct {
	pc  uint64
	rtn *Routine
}

type frame struct {
	pc  uint64
	rtn *Routine
}

// maxCallDepth bounds the simulated call stack; deeper calls are
// treated as tail calls, which keeps runaway recursion in stack models
// harmless.
const maxCallDepth = 64

// Emitter is the instrumentation DSL. It owns the current program
// counter, a rotating register allocator for dataflow tracking, the
// simulated call stack, and the remaining instruction budget.
//
// All emit methods send exactly one instruction to the probe and
// advance the PC by isa.InstBytes (branches may relocate it).
type Emitter struct {
	p       Probe
	bp      BlockProbe // non-nil enables block-buffered delivery
	block   []isa.Inst // accumulating block; cap is the block size
	inst    isa.Inst
	pc      uint64
	rtn     *Routine
	stack   [maxCallDepth]frame
	depth   int
	budget  int64
	emitted uint64
	nextReg uint8

	// cancel, when non-nil, aborts the emission: once the channel is
	// closed the next cancellation poll (every cancelCheckMask+1
	// instructions) zeroes the remaining budget, so OK() turns false
	// and the kernel winds down within a few thousand instructions
	// instead of running its full budget. canceled records that the
	// abort fired.
	cancel   <-chan struct{}
	canceled bool
}

// cancelCheckMask spaces the cancellation polls: one non-blocking
// channel read per 4096 emitted instructions — the same granularity as
// a default trace block — which keeps the hot emit path free of
// per-instruction select overhead while bounding the post-cancel
// overrun to a few microseconds of simulation.
const cancelCheckMask = 4095

// SetCancel arms the emitter with an abort channel (typically
// ctx.Done()); a nil channel disarms it. Closing the channel stops the
// run early: the budget is zeroed at the next poll, so kernels polling
// OK() return promptly. Call before emission starts.
func (e *Emitter) SetCancel(ch <-chan struct{}) { e.cancel = ch }

// Canceled reports whether the abort channel fired during emission —
// the emitted stream is then truncated and any derived result must be
// discarded, never published.
func (e *Emitter) Canceled() bool { return e.canceled }

// pollCancel is the periodic non-blocking abort check.
func (e *Emitter) pollCancel() {
	select {
	case <-e.cancel:
		e.canceled = true
		e.budget = 0
	default:
	}
}

// NewEmitter returns an emitter feeding p with an instruction budget.
// Kernels poll OK() and stop when the budget is exhausted, so every
// workload run retires a comparable instruction count regardless of
// dataset size. Delivery is per-instruction; use NewBlockEmitter for
// the batched path.
func NewEmitter(p Probe, budget int64) *Emitter {
	return &Emitter{p: p, budget: budget, nextReg: 8}
}

// NewBlockEmitter returns an emitter that, when p implements
// BlockProbe, accumulates instructions into a blockSize-instruction
// buffer and delivers full blocks through InstBlock (callers must
// Flush once emission ends). blockSize <= 0 picks DefaultBlockSize.
// For probes without a block path it behaves exactly like NewEmitter.
// The probe observes the identical instruction sequence either way.
func NewBlockEmitter(p Probe, budget int64, blockSize int) *Emitter {
	e := &Emitter{p: p, budget: budget, nextReg: 8}
	if bp, ok := p.(BlockProbe); ok {
		if blockSize <= 0 {
			blockSize = DefaultBlockSize
		}
		e.bp = bp
		e.block = make([]isa.Inst, 0, blockSize)
	}
	return e
}

// Flush delivers any buffered partial block. It must be called when
// emission ends (workloads.Run does); calling it on a per-instruction
// emitter, or twice, is a no-op.
func (e *Emitter) Flush() {
	if e.bp != nil && len(e.block) > 0 {
		e.bp.InstBlock(e.block)
		e.block = e.block[:0]
	}
}

// send delivers the staged instruction record — appended to the block
// buffer on the batched path, pushed through Probe.Inst otherwise —
// and retires it against the budget. Every emission funnels through
// here, so both delivery modes see the same sequence.
func (e *Emitter) send() {
	if e.bp != nil {
		e.block = append(e.block, e.inst)
		if len(e.block) == cap(e.block) {
			e.bp.InstBlock(e.block)
			e.block = e.block[:0]
		}
	} else {
		e.p.Inst(&e.inst)
	}
	e.budget--
	e.emitted++
	if e.cancel != nil && e.emitted&cancelCheckMask == 0 {
		e.pollCancel()
	}
}

// OK reports whether instruction budget remains.
func (e *Emitter) OK() bool { return e.budget > 0 }

// Emitted returns the number of instructions emitted so far.
func (e *Emitter) Emitted() uint64 { return e.emitted }

// PC returns the current program counter (mainly for tests).
func (e *Emitter) PC() uint64 { return e.pc }

// Routine returns the routine the emitter is currently inside.
func (e *Emitter) Routine() *Routine { return e.rtn }

// Enter positions the emitter at the start of r without emitting a
// control transfer. Use it once at the top of a kernel; use Call for
// modelled function calls.
func (e *Emitter) Enter(r *Routine) {
	e.rtn = r
	e.pc = r.Base
}

// fresh returns the next rotating register. Registers 1..7 are reserved
// for fixed accumulators (see Fixed); 0 is isa.NoReg.
func (e *Emitter) fresh() isa.Reg {
	r := e.nextReg
	e.nextReg++
	if e.nextReg == 0 { // wrapped past 255
		e.nextReg = 8
	}
	return isa.Reg(r)
}

// Fixed returns one of seven fixed registers (i in 1..7), used for
// serial accumulator chains (reductions), which bound instruction-level
// parallelism exactly as a real dependent chain does.
func (e *Emitter) Fixed(i int) isa.Reg {
	if i < 1 || i > 7 {
		panic("trace: Fixed register index out of range")
	}
	return isa.Reg(i)
}

func (e *Emitter) emit() {
	e.inst.PC = e.pc
	e.advance()
	e.send()
}

func (e *Emitter) advance() {
	e.pc += isa.InstBytes
	if e.rtn != nil && e.pc >= e.rtn.End() {
		// Silent wrap keeps long straight-line emissions inside the
		// routine; the instruction cache sees the region re-walked.
		e.pc = e.rtn.Base
	}
}

// Load emits a load of size bytes from addr. addrDep is the register
// the address depends on (isa.NoReg if none). It returns the register
// holding the loaded value.
func (e *Emitter) Load(addr uint64, size uint8, addrDep isa.Reg) isa.Reg {
	dst := e.fresh()
	e.inst = isa.Inst{Op: isa.Load, Addr: addr, Size: size, Dst: dst, Src1: addrDep}
	e.emit()
	return dst
}

// LoadTo emits a load whose result lands in dst (used for accumulator
// reloads).
func (e *Emitter) LoadTo(dst isa.Reg, addr uint64, size uint8, addrDep isa.Reg) isa.Reg {
	e.inst = isa.Inst{Op: isa.Load, Addr: addr, Size: size, Dst: dst, Src1: addrDep}
	e.emit()
	return dst
}

// Store emits a store of size bytes to addr. val is the stored value's
// register, addrDep the address dependency.
func (e *Emitter) Store(addr uint64, size uint8, val, addrDep isa.Reg) {
	e.inst = isa.Inst{Op: isa.Store, Addr: addr, Size: size, Src1: val, Src2: addrDep}
	e.emit()
}

// Int emits an integer operation of the given class (IntAlu, IntAddr,
// FPAddr, IntMul, IntDiv) and returns the destination register.
func (e *Emitter) Int(op isa.Op, s1, s2 isa.Reg) isa.Reg {
	dst := e.fresh()
	e.inst = isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2}
	e.emit()
	return dst
}

// IntTo emits an integer operation into an explicit destination,
// forming a serial chain when dst is also a source.
func (e *Emitter) IntTo(dst isa.Reg, op isa.Op, s1, s2 isa.Reg) isa.Reg {
	e.inst = isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2}
	e.emit()
	return dst
}

// FP emits a floating-point operation (FPArith or FPDiv) and returns
// the destination register.
func (e *Emitter) FP(op isa.Op, s1, s2 isa.Reg) isa.Reg {
	dst := e.fresh()
	e.inst = isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2}
	e.emit()
	return dst
}

// FPTo emits a floating-point operation into an explicit destination.
func (e *Emitter) FPTo(dst isa.Reg, op isa.Op, s1, s2 isa.Reg) isa.Reg {
	e.inst = isa.Inst{Op: op, Dst: dst, Src1: s1, Src2: s2}
	e.emit()
	return dst
}

// IntN emits n independent IntAlu operations (fixed-cost glue code).
func (e *Emitter) IntN(n int) {
	for i := 0; i < n; i++ {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
}

// Here records the current position as a branch target label.
func (e *Emitter) Here() Label { return Label{pc: e.pc, rtn: e.rtn} }

// Loop emits a conditional backward branch to l. When taken the PC
// returns to the label (a loop iteration); otherwise execution falls
// through. dep is the register the loop condition depends on.
func (e *Emitter) Loop(l Label, taken bool, dep isa.Reg) {
	e.inst = isa.Inst{
		Op: isa.Branch, Kind: isa.BrCond, Taken: taken,
		Target: l.pc, Src1: dep,
	}
	e.inst.PC = e.pc
	e.send()
	if taken {
		e.pc = l.pc
		e.rtn = l.rtn
	} else {
		e.pc += isa.InstBytes
	}
}

// If emits a conditional forward branch guarding a then-block of
// exactly thenN instructions. When cond is false the branch is taken
// and skips the block (then is not called); when cond is true the
// branch falls through and then() must emit exactly thenN
// instructions. This mirrors compiled if-statements and keeps the PCs
// of the surrounding code identical on both paths, so the branch
// predictors see stable branch addresses.
func (e *Emitter) If(cond bool, thenN int, then func()) {
	target := e.pc + uint64((thenN+1)*isa.InstBytes)
	e.inst = isa.Inst{
		Op: isa.Branch, Kind: isa.BrCond, Taken: !cond, Target: target,
	}
	e.inst.PC = e.pc
	e.send()
	if cond {
		e.pc += isa.InstBytes
		before := e.emitted
		then()
		if got := int(e.emitted - before); got != thenN {
			panic("trace: If block emitted wrong instruction count: " +
				itoa(got) + " != " + itoa(thenN))
		}
	} else {
		e.pc = target
		if e.rtn != nil && e.pc >= e.rtn.End() {
			e.pc = e.rtn.Base
		}
	}
}

// Branch emits a standalone conditional branch with an explicit
// outcome; the fall-through and taken paths rejoin immediately (a
// compare-and-skip of one instruction). Use it for data-dependent
// comparisons whose arms are handled in Go code rather than emitted.
func (e *Emitter) Branch(taken bool, dep isa.Reg) {
	target := e.pc + 2*isa.InstBytes
	e.inst = isa.Inst{
		Op: isa.Branch, Kind: isa.BrCond, Taken: taken, Target: target,
		Src1: dep,
	}
	e.emit()
}

// Call emits a direct call into r and moves the emitter there.
func (e *Emitter) Call(r *Routine) {
	e.call(r, isa.BrCall, isa.NoReg)
}

// CallIndirect emits an indirect call into r (virtual dispatch); the
// indirect-branch predictor handles it differently from direct calls.
func (e *Emitter) CallIndirect(r *Routine, dep isa.Reg) {
	e.call(r, isa.BrIndirectCall, dep)
}

func (e *Emitter) call(r *Routine, kind isa.BranchKind, dep isa.Reg) {
	e.inst = isa.Inst{Op: isa.Branch, Kind: kind, Taken: true, Target: r.Base, Src1: dep}
	e.inst.PC = e.pc
	e.send()
	ret := e.pc + isa.InstBytes
	if e.depth < maxCallDepth {
		e.stack[e.depth] = frame{pc: ret, rtn: e.rtn}
		e.depth++
	}
	e.rtn = r
	e.pc = r.Base
}

// Ret emits a return to the calling routine. With an empty call stack
// it is a no-op jump to the current routine base.
func (e *Emitter) Ret() {
	var target frame
	if e.depth > 0 {
		e.depth--
		target = e.stack[e.depth]
	} else {
		target = frame{pc: e.rtn.Base, rtn: e.rtn}
	}
	e.inst = isa.Inst{Op: isa.Branch, Kind: isa.BrRet, Taken: true, Target: target.pc}
	e.inst.PC = e.pc
	e.send()
	e.pc = target.pc
	e.rtn = target.rtn
}

// Depth returns the current simulated call depth (for tests).
func (e *Emitter) Depth() int { return e.depth }

// Pos is a saved emitter code position.
type Pos struct {
	pc  uint64
	rtn *Routine
}

// Pos captures the current code position so a framework interposer can
// emit elsewhere and return (see Restore).
func (e *Emitter) Pos() Pos { return Pos{pc: e.pc, rtn: e.rtn} }

// Restore moves the emitter back to a saved position without emitting
// a control transfer; pair with Pos around stream emissions.
func (e *Emitter) Restore(p Pos) {
	e.pc = p.pc
	e.rtn = p.rtn
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
