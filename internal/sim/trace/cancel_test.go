package trace

import (
	"testing"

	"repro/internal/sim/isa"
)

// TestEmitterCancelStopsEmission pins the abort contract: closing the
// cancel channel zeroes the budget at the next poll, so a kernel
// polling OK() stops within one poll interval instead of running its
// full budget.
func TestEmitterCancelStopsEmission(t *testing.T) {
	var probe CountProbe
	const budget = 1 << 20
	e := NewEmitter(&probe, budget)
	cancel := make(chan struct{})
	e.SetCancel(cancel)
	close(cancel) // cancelled before the run even starts

	for e.OK() {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
	if !e.Canceled() {
		t.Fatal("emitter did not observe the cancellation")
	}
	// The poll fires every cancelCheckMask+1 instructions; the overrun
	// is bounded by one interval.
	if got := e.Emitted(); got > cancelCheckMask+1 {
		t.Fatalf("emitted %d instructions after cancellation, want <= %d", got, cancelCheckMask+1)
	}
}

// TestEmitterNilCancelRunsFullBudget pins that an unarmed emitter is
// unchanged: the full budget is emitted and Canceled stays false.
func TestEmitterNilCancelRunsFullBudget(t *testing.T) {
	var probe CountProbe
	const budget = 10_000
	e := NewBlockEmitter(&probe, budget, 256)
	for e.OK() {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
	}
	e.Flush()
	if e.Canceled() {
		t.Fatal("unarmed emitter reported cancellation")
	}
	if probe.Total != budget {
		t.Fatalf("probe saw %d instructions, want %d", probe.Total, budget)
	}
}

// TestEmitterCancelMidRunBlockPath cancels partway through a block-
// buffered emission and checks the stream stops near the cancellation
// point.
func TestEmitterCancelMidRunBlockPath(t *testing.T) {
	var probe CountProbe
	const budget = 1 << 20
	e := NewBlockEmitter(&probe, budget, 512)
	cancel := make(chan struct{})
	e.SetCancel(cancel)

	emitted := 0
	for e.OK() {
		e.Int(isa.IntAlu, isa.NoReg, isa.NoReg)
		emitted++
		if emitted == 10_000 {
			close(cancel)
		}
	}
	e.Flush()
	if !e.Canceled() {
		t.Fatal("emitter did not observe mid-run cancellation")
	}
	if got := e.Emitted(); got < 10_000 || got > 10_000+cancelCheckMask+1 {
		t.Fatalf("emitted %d, want within one poll interval past 10000", got)
	}
}
