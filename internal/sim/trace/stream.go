package trace

import (
	"repro/internal/sim/isa"
	"repro/internal/xrand"
)

// Mix describes the statistical composition of a synthetic instruction
// stream. It is the modelling vocabulary for code we do not emit
// semantically: software-stack framework paths (RPC, serialization,
// task bookkeeping) and the comparator-suite mini-kernels.
//
// The class fields are fractions in [0,1]; whatever they leave of the
// unit interval is emitted as plain IntAlu computation.
type Mix struct {
	Load    float32 // fraction of loads
	Store   float32 // fraction of stores
	Branch  float32 // fraction of branches
	IntAddr float32 // fraction of integer address calculations
	FPAddr  float32 // fraction of FP address calculations
	FPArith float32 // fraction of FP arithmetic
	IntMul  float32 // fraction of integer multiplies
	IntDiv  float32 // fraction of integer divides

	// Taken is the per-branch-site probability that a branch site is a
	// taken branch. Each site's outcome is derived from its PC, so the
	// same site behaves consistently across executions — which is what
	// makes framework code predictable to the branch predictors.
	Taken float32
	// Noise is the fraction of branch executions whose outcome is
	// random per execution (data-dependent, unpredictable) instead of
	// the per-site outcome.
	Noise float32
	// Chain is the probability that an operation consumes the previous
	// operation's result, the knob for instruction-level parallelism:
	// Chain near 1 serialises the stream, near 0 makes it wide.
	Chain float32
	// CallEvery, if non-zero, emits an indirect call + return around
	// every CallEvery-th instruction group, modelling virtual dispatch
	// (JVM stacks, xalancbmk-style code).
	CallEvery int
}

// Walk generates a data-address sequence over a memory region:
// sequential with a stride, uniformly random, or cluster-random
// (random page jumps with several strided accesses per cluster — the
// pattern of object-graph traversal, which is what keeps real TLB miss
// rates far below one-miss-per-access). Walks carry their own cursor
// so interleaved streams don't disturb each other.
type Walk struct {
	Base   uint64
	Size   uint64
	Stride uint64
	Random bool
	// ClusterLen > 0 enables cluster-random mode: a random jump every
	// ClusterLen accesses, strided accesses in between.
	ClusterLen int
	pos        uint64
	count      int
}

// NewWalk returns a sequential walk with the given stride (0 means 8).
func NewWalk(base, size, stride uint64) *Walk {
	if stride == 0 {
		stride = 8
	}
	return &Walk{Base: base, Size: size, Stride: stride}
}

// NewRandomWalk returns a uniformly random walk over [base, base+size).
func NewRandomWalk(base, size uint64) *Walk {
	return &Walk{Base: base, Size: size, Random: true, Stride: 8}
}

// NewClusterWalk returns a cluster-random walk: every clusterLen
// accesses it jumps to a random position, and advances by stride in
// between.
func NewClusterWalk(base, size, stride uint64, clusterLen int) *Walk {
	if stride == 0 {
		stride = 64
	}
	return &Walk{Base: base, Size: size, Stride: stride, ClusterLen: clusterLen}
}

// Next returns the next address of the walk.
func (w *Walk) Next(r *xrand.Rand) uint64 {
	if w.Size == 0 {
		return w.Base
	}
	if w.Random {
		return w.Base + (r.Uint64n(w.Size) &^ 7)
	}
	if w.ClusterLen > 0 {
		if w.count%w.ClusterLen == 0 {
			w.pos = r.Uint64n(w.Size) &^ 7
		}
		w.count++
	}
	a := w.Base + w.pos%w.Size
	w.pos += w.Stride
	if w.ClusterLen == 0 && w.pos >= w.Size {
		w.pos = 0
	}
	return a
}

// Reset rewinds a sequential walk to its base.
func (w *Walk) Reset() { w.pos = 0 }

// Stream emits synthetic instructions matching a Mix, walking the PCs
// of a routine and the addresses of one or two data Walks.
type Stream struct {
	Mix Mix
	// Pri is the primary data walk (mandatory if the mix has memory
	// operations); Sec an optional secondary walk used with
	// probability SecP; Far an optional far-heap walk used with
	// probability FarP (checked first).
	Pri  *Walk
	Sec  *Walk
	SecP float32
	Far  *Walk
	FarP float32
	// Rng drives class selection and noise. Mandatory.
	Rng *xrand.Rand
}

// Emit produces n instructions inside rtn starting at byte offset off
// (wrapped into the routine). The emitter's current position is moved
// into the routine; callers doing semantic emission afterwards should
// re-Enter their own routine.
func (s *Stream) Emit(e *Emitter, rtn *Routine, off uint64, n int) {
	if n <= 0 {
		return
	}
	e.rtn = rtn
	e.pc = rtn.Base + (off % rtn.Size &^ (isa.InstBytes - 1))
	m := &s.Mix
	var last isa.Reg = isa.NoReg
	sinceCall := 0
	for i := 0; i < n && e.OK(); i++ {
		if m.CallEvery > 0 {
			sinceCall++
			if sinceCall >= m.CallEvery {
				sinceCall = 0
				// Indirect hop elsewhere in the same routine: a
				// switch-table-style indirect jump to a per-site-stable
				// target (virtual dispatch is overwhelmingly
				// monomorphic per call site).
				tgt := rtn.Base + (xrand.Hash64(e.pc)%rtn.Size)&^(isa.InstBytes-1)
				e.inst = isa.Inst{Op: isa.Branch, Kind: isa.BrIndirectJump, Taken: true, Target: tgt, Src1: last}
				e.inst.PC = e.pc
				e.send()
				e.pc = tgt
				continue
			}
		}
		// The instruction class at a given PC is a pure function of the
		// PC: re-executing a window emits the same instruction sequence
		// (and the same branch sites with the same outcomes), exactly
		// like real code. Only data addresses and noise vary by run.
		r := float32(xrand.Hash64(e.pc^0xC0DE)&0xFFFF) / 65536
		var src1 isa.Reg
		if s.Rng.Float32() < m.Chain {
			src1 = last
		} else {
			src1 = isa.NoReg
		}
		switch {
		case r < m.Load:
			last = e.Load(s.addr(), 8, src1)
		case r < m.Load+m.Store:
			e.Store(s.addr(), 8, last, src1)
		case r < m.Load+m.Store+m.Branch:
			s.branch(e, src1)
		case r < m.Load+m.Store+m.Branch+m.IntAddr:
			last = e.Int(isa.IntAddr, src1, isa.NoReg)
		case r < m.Load+m.Store+m.Branch+m.IntAddr+m.FPAddr:
			last = e.Int(isa.FPAddr, src1, isa.NoReg)
		case r < m.Load+m.Store+m.Branch+m.IntAddr+m.FPAddr+m.FPArith:
			last = e.FP(isa.FPArith, src1, isa.NoReg)
		case r < m.Load+m.Store+m.Branch+m.IntAddr+m.FPAddr+m.FPArith+m.IntMul:
			last = e.Int(isa.IntMul, src1, isa.NoReg)
		case r < m.Load+m.Store+m.Branch+m.IntAddr+m.FPAddr+m.FPArith+m.IntMul+m.IntDiv:
			last = e.Int(isa.IntDiv, src1, isa.NoReg)
		default:
			last = e.Int(isa.IntAlu, src1, isa.NoReg)
		}
	}
}

func (s *Stream) addr() uint64 {
	if s.Far != nil && s.Rng.Float32() < s.FarP {
		return s.Far.Next(s.Rng)
	}
	if s.Sec != nil && s.Rng.Float32() < s.SecP {
		return s.Sec.Next(s.Rng)
	}
	if s.Pri == nil {
		return 0
	}
	return s.Pri.Next(s.Rng)
}

func (s *Stream) branch(e *Emitter, dep isa.Reg) {
	m := &s.Mix
	// Per-site outcome: hash the PC so the site is consistently taken
	// or not-taken across executions, with density m.Taken.
	h := xrand.Hash64(e.pc)
	taken := float32(h&0xFFFF)/65536 < m.Taken
	if m.Noise > 0 && s.Rng.Float32() < m.Noise {
		taken = s.Rng.Uint64()&1 == 0
	}
	// Most taken branches skip a few instructions; roughly one in ten
	// jumps far enough (a basic-block boundary, an inlined-call body)
	// to defeat the next-line instruction prefetcher, as real code
	// layouts do.
	skip := 1 + int(h>>16)%6
	if h%10 == 0 {
		skip = 24 + int(h>>20)%40
	}
	target := e.pc + uint64((skip+1)*isa.InstBytes)
	e.inst = isa.Inst{Op: isa.Branch, Kind: isa.BrCond, Taken: taken, Target: target, Src1: dep}
	e.inst.PC = e.pc
	e.send()
	if taken {
		e.pc = target
	} else {
		e.pc += isa.InstBytes
	}
	if e.rtn != nil && e.pc >= e.rtn.End() {
		e.pc = e.rtn.Base
	}
}
