package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
)

func TestParseSpec(t *testing.T) {
	good := []struct {
		raw  string
		want Spec
	}{
		{"", Spec{Seed: 1}},
		{"seed=7,err=0.3", Spec{Seed: 7, ErrProb: 0.3}},
		{"latency=25ms", Spec{Seed: 1, Latency: 25 * time.Millisecond, LatencyProb: 1}},
		{"latency=25ms,latency_p=0.5", Spec{Seed: 1, Latency: 25 * time.Millisecond, LatencyProb: 0.5}},
		{"truncate=0.1", Spec{Seed: 1, TruncProb: 0.1}},
		{"up=6s,down=4s", Spec{Seed: 1, Up: 6 * time.Second, Down: 4 * time.Second}},
		{"down=4s", Spec{Seed: 1, Down: 4 * time.Second}},
		{" seed=2 , err=1 ", Spec{Seed: 2, ErrProb: 1}},
	}
	for _, tc := range good {
		got, err := ParseSpec(tc.raw)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.raw, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q)=%+v, want %+v", tc.raw, got, tc.want)
		}
	}
	bad := []string{"bogus", "err=2", "err=-0.1", "latency=xyz", "up=6s", "frob=1", "seed=abc"}
	for _, raw := range bad {
		if _, err := ParseSpec(raw); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", raw)
		}
	}
}

func TestSpecEnabledAndString(t *testing.T) {
	if (Spec{Seed: 9}).Enabled() {
		t.Fatal("seed-only spec reports enabled")
	}
	s := Spec{Seed: 7, ErrProb: 0.3, Down: 4 * time.Second, Up: 6 * time.Second}
	if !s.Enabled() {
		t.Fatal("faulty spec reports disabled")
	}
	back, err := ParseSpec(s.String())
	if err != nil || back != s {
		t.Fatalf("round trip %q → %+v (%v), want %+v", s.String(), back, err, s)
	}
}

func TestDeterministicDraws(t *testing.T) {
	a, b := New(Spec{Seed: 42}), New(Spec{Seed: 42})
	for i := 0; i < 100; i++ {
		if a.float64() != b.float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(Spec{Seed: 43})
	same := 0
	for i := 0; i < 100; i++ {
		if a.float64() == c.float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds nearly identical (%d/100 equal draws)", same)
	}
}

func TestFlappingSchedule(t *testing.T) {
	in := New(Spec{Seed: 1, Up: 6 * time.Second, Down: 4 * time.Second})
	base := in.start
	at := func(d time.Duration) bool {
		in.now = func() time.Time { return base.Add(d) }
		return in.downNow()
	}
	for _, tc := range []struct {
		at   time.Duration
		down bool
	}{
		{0, false}, {5 * time.Second, false}, {6 * time.Second, true},
		{9 * time.Second, true}, {10 * time.Second, false}, {16 * time.Second, true},
	} {
		if got := at(tc.at); got != tc.down {
			t.Fatalf("downNow at %v = %v, want %v (up-first schedule)", tc.at, got, tc.down)
		}
	}
	forever := New(Spec{Seed: 1, Down: time.Second})
	forever.now = func() time.Time { return forever.start.Add(time.Hour) }
	if !forever.downNow() {
		t.Fatal("down-only spec recovered")
	}
	if New(Spec{Seed: 1}).downNow() {
		t.Fatal("spec without windows reports down")
	}
}

func TestTransportInjectsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("real payload bytes here"))
	}))
	defer srv.Close()

	in := New(Spec{Seed: 3, ErrProb: 1})
	client := &http.Client{Transport: in.Transport(nil)}
	resets, fauxResponses := 0, 0
	for i := 0; i < 40; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("non-Fault transport error: %v", err)
			}
			resets++
			continue
		}
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(Header) != "1" {
			t.Fatalf("unexpected response %d %v", resp.StatusCode, resp.Header)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		fauxResponses++
	}
	if resets == 0 || fauxResponses == 0 {
		t.Fatalf("want both flavors, got %d resets / %d 503s", resets, fauxResponses)
	}
	st := in.Stats()
	if st.Errors != 40 || st.Resets != int64(resets) {
		t.Fatalf("stats %+v inconsistent with %d resets", st, resets)
	}
}

func TestTransportDownWindow(t *testing.T) {
	in := New(Spec{Seed: 1, Down: time.Second})
	client := &http.Client{Transport: in.Transport(nil)}
	if _, err := client.Get("http://127.0.0.1:9/never-dialed"); err == nil {
		t.Fatal("down window let a request through")
	}
	if in.Stats().DownRejects != 1 {
		t.Fatalf("downRejects=%d, want 1", in.Stats().DownRejects)
	}
}

func TestTransportTruncatesBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	}))
	defer srv.Close()

	in := New(Spec{Seed: 5, TruncProb: 1})
	client := &http.Client{Transport: in.Transport(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read cleanly (%d bytes)", len(b))
	}
	if len(b) >= len(payload) {
		t.Fatalf("body not truncated: %d bytes", len(b))
	}
	if in.Stats().Truncations != 1 {
		t.Fatalf("truncations=%d, want 1", in.Stats().Truncations)
	}
}

func TestHandlerAbortsAndErrors(t *testing.T) {
	in := New(Spec{Seed: 11, ErrProb: 1})
	srv := httptest.NewServer(in.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("should not arrive"))
	})))
	defer srv.Close()

	transportErrs, injected := 0, 0
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			transportErrs++
			continue
		}
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get(Header) != "1" {
			t.Fatalf("unexpected response %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		injected++
	}
	if transportErrs == 0 || injected == 0 {
		t.Fatalf("want both aborted and 503 responses, got %d/%d", transportErrs, injected)
	}
}

func TestHandlerDownWindowAborts(t *testing.T) {
	serve := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("up"))
	})
	// Down-only schedule: every request is severed. A separate injector
	// per schedule — the aborted handler goroutine may still be
	// unwinding when the next phase starts, so mutating one injector's
	// schedule in place would race with it.
	down := httptest.NewServer(New(Spec{Seed: 1, Down: time.Second}).Handler(serve))
	defer down.Close()
	if _, err := http.Get(down.URL); err == nil {
		t.Fatal("down window served a response")
	}
	// Up-first schedule inside its window: requests pass through clean.
	up := httptest.NewServer(New(Spec{Seed: 1, Up: time.Hour, Down: time.Second}).Handler(serve))
	defer up.Close()
	resp, err := http.Get(up.URL)
	if err != nil {
		t.Fatalf("up window failed: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "up" {
		t.Fatalf("body %q, want up", b)
	}
}

func TestHandlerTruncation(t *testing.T) {
	payload := strings.Repeat("y", 8192)
	in := New(Spec{Seed: 2, TruncProb: 1})
	srv := httptest.NewServer(in.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(payload))
	})))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err) // headers + first half arrive before the abort
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err == nil && len(b) >= len(payload) {
		t.Fatalf("response not truncated: %d bytes, err=%v", len(b), err)
	}
}

// memBackend is a trivial in-memory artifact.Backend.
type memBackend struct{ m map[string][]byte }

func (b *memBackend) Get(id string) ([]byte, bool) { d, ok := b.m[id]; return d, ok }
func (b *memBackend) Put(id string, data []byte)   { b.m[id] = data }

func TestBackendWrapperFaults(t *testing.T) {
	inner := &memBackend{m: map[string][]byte{}}
	in := New(Spec{Seed: 4, ErrProb: 1})
	fb := in.Backend(inner)
	fb.Put("a", []byte("data"))
	if len(inner.m) != 0 {
		t.Fatal("faulty Put reached the inner backend")
	}
	inner.m["a"] = []byte("data")
	if _, ok := fb.Get("a"); ok {
		t.Fatal("faulty Get returned a hit")
	}
	if in.Stats().Errors != 2 {
		t.Fatalf("errors=%d, want 2", in.Stats().Errors)
	}

	// Truncation corrupts entries; a Store must discard them.
	in2 := New(Spec{Seed: 4, TruncProb: 1})
	fb2 := in2.Backend(inner)
	got, ok := fb2.Get("a")
	if !ok || len(got) >= len(inner.m["a"]) {
		t.Fatalf("truncating Get: ok=%v len=%d", ok, len(got))
	}
}

func TestBackendWrapperCorruptionNeverPoisonsStore(t *testing.T) {
	// A store reading through a 100%-truncating backend must treat
	// every entry as a miss and recompute — never return wrong bytes.
	inner := &memBackend{m: map[string][]byte{}}
	key := artifact.KeyOf("test-kind", map[string]any{"n": 1})
	if _, err := artifact.Get(artifact.NewWithBackend(inner), key, func() (string, error) {
		return "payload", nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(inner.m) != 1 {
		t.Fatalf("seed store left %d entries, want 1", len(inner.m))
	}

	in := New(Spec{Seed: 8, TruncProb: 1})
	store := artifact.NewWithBackend(in.Backend(inner))
	computes := 0
	got, err := artifact.Get(store, key, func() (string, error) {
		computes++
		return "payload", nil
	})
	if err != nil || got != "payload" {
		t.Fatalf("got %q err=%v", got, err)
	}
	if computes != 1 {
		t.Fatalf("computes=%d, want 1 (corrupt entry must cost a recompute)", computes)
	}
}

func TestBackendWrapperPassesThroughWhenClean(t *testing.T) {
	inner := &memBackend{m: map[string][]byte{}}
	in := New(Spec{Seed: 4}) // no faults
	fb := in.Backend(inner)
	fb.Put("a", []byte("data"))
	if got, ok := fb.Get("a"); !ok || string(got) != "data" {
		t.Fatalf("clean wrapper mangled data: %q %v", got, ok)
	}
	if out := fb.(artifact.BulkFetcher).FetchAll([]string{"a"}); out != nil {
		t.Fatal("bulk over non-bulk inner backend should return nil")
	}
}
