// Package faultinject is the deterministic chaos layer: a seeded,
// schedule-driven injector that wraps an http.RoundTripper (client
// side), an http.Handler (server side), or an artifact.Backend (store
// side) and injects latency, 5xx/connection-reset errors, truncated
// bodies, and flapping down-for-N-seconds windows.
//
// It exists to prove the resilience machinery (internal/retry, fleet
// peer breakers, degraded-mode serving) actually works: unit tests
// wrap transports and backends directly, and reprod/artifactd expose
// a testing-only -fault-spec flag that wraps their serving surface so
// the chaos CI job can run a flapping replica against a faulty
// backend.
//
// A spec is a comma-separated key=value string:
//
//	seed=7,err=0.3,latency=25ms,latency_p=0.5,truncate=0.1,up=6s,down=4s
//
//	seed=N       rng seed (default 1); same seed → same fault sequence
//	err=P        probability an operation fails (503 or connection reset)
//	latency=D    injected delay duration
//	latency_p=P  probability of injecting the delay (default 1 if
//	             latency is set)
//	truncate=P   probability a response body is cut off mid-stream
//	up=D/down=D  flapping schedule: up for D_up, then down for D_down,
//	             repeating from injector start (up phase first). down
//	             without up = down forever. While down every operation
//	             fails with a connection reset.
//
// All randomness comes from one seeded splitmix64 stream, so a given
// (spec, operation sequence) reproduces the same faults.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec is a parsed fault specification. The zero Spec injects
// nothing.
type Spec struct {
	Seed        uint64
	ErrProb     float64       // probability an operation fails outright
	Latency     time.Duration // injected delay
	LatencyProb float64       // probability of the delay
	TruncProb   float64       // probability of body truncation
	Up          time.Duration // flapping: healthy window (0 with Down>0 = never up)
	Down        time.Duration // flapping: dead window
}

// Enabled reports whether the spec injects any fault at all.
func (s Spec) Enabled() bool {
	return s.ErrProb > 0 || (s.Latency > 0 && s.LatencyProb > 0) || s.TruncProb > 0 || s.Down > 0
}

// String renders the spec back in parseable form (stable key order).
func (s Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if s.Seed != 0 {
		add("seed", strconv.FormatUint(s.Seed, 10))
	}
	if s.ErrProb > 0 {
		add("err", strconv.FormatFloat(s.ErrProb, 'g', -1, 64))
	}
	if s.Latency > 0 {
		add("latency", s.Latency.String())
		add("latency_p", strconv.FormatFloat(s.LatencyProb, 'g', -1, 64))
	}
	if s.TruncProb > 0 {
		add("truncate", strconv.FormatFloat(s.TruncProb, 'g', -1, 64))
	}
	if s.Up > 0 {
		add("up", s.Up.String())
	}
	if s.Down > 0 {
		add("down", s.Down.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// ParseSpec parses the key=value spec grammar documented on the
// package. The empty string parses to the zero (disabled) Spec.
func ParseSpec(raw string) (Spec, error) {
	s := Spec{Seed: 1, LatencyProb: -1}
	raw = strings.TrimSpace(raw)
	if raw == "" {
		s.LatencyProb = 0
		return s, nil
	}
	for _, field := range strings.Split(raw, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Spec{}, fmt.Errorf("faultinject: %q is not key=value", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseUint(v, 10, 64)
		case "err":
			s.ErrProb, err = parseProb(v)
		case "latency":
			s.Latency, err = time.ParseDuration(v)
		case "latency_p":
			s.LatencyProb, err = parseProb(v)
		case "truncate":
			s.TruncProb, err = parseProb(v)
		case "up":
			s.Up, err = time.ParseDuration(v)
		case "down":
			s.Down, err = time.ParseDuration(v)
		default:
			return Spec{}, fmt.Errorf("faultinject: unknown key %q (want seed, err, latency, latency_p, truncate, up, down)", k)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("faultinject: %s: %w", k, err)
		}
	}
	if s.LatencyProb < 0 {
		if s.Latency > 0 {
			s.LatencyProb = 1
		} else {
			s.LatencyProb = 0
		}
	}
	if s.Latency < 0 || s.Up < 0 || s.Down < 0 {
		return Spec{}, fmt.Errorf("faultinject: durations must be non-negative")
	}
	if s.Up > 0 && s.Down == 0 {
		return Spec{}, fmt.Errorf("faultinject: up=%v without a down window does nothing", s.Up)
	}
	return s, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// Stats counts the faults an injector has actually dealt out.
type Stats struct {
	Errors      int64 // injected 503s and connection resets
	Resets      int64 // of Errors, the connection-reset flavor
	Latencies   int64 // injected delays
	Truncations int64 // bodies cut off mid-stream
	DownRejects int64 // operations refused inside a down window
}

// Injector deals faults according to one Spec. Create with New; the
// zero Injector injects nothing.
type Injector struct {
	spec  Spec
	start time.Time
	now   func() time.Time // injectable clock (tests)
	sleep func(time.Duration)

	mu  sync.Mutex
	rng uint64

	errors      atomic.Int64
	resets      atomic.Int64
	latencies   atomic.Int64
	truncations atomic.Int64
	downRejects atomic.Int64
}

// New builds an injector for spec, with the flapping schedule
// anchored at the current time (up phase first).
func New(spec Spec) *Injector {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		spec:  spec,
		start: time.Now(),
		now:   time.Now,
		sleep: time.Sleep,
		rng:   seed,
	}
}

// Spec returns the injector's spec.
func (in *Injector) Spec() Spec { return in.spec }

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Errors:      in.errors.Load(),
		Resets:      in.resets.Load(),
		Latencies:   in.latencies.Load(),
		Truncations: in.truncations.Load(),
		DownRejects: in.downRejects.Load(),
	}
}

// float64 draws the next uniform [0,1) variate from the seeded
// splitmix64 stream.
func (in *Injector) float64() float64 {
	in.mu.Lock()
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	in.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// draw reports true with probability p.
func (in *Injector) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return in.float64() < p
}

// downNow reports whether the flapping schedule currently has the
// wrapped component dead.
func (in *Injector) downNow() bool {
	if in == nil || in.spec.Down <= 0 {
		return false
	}
	if in.spec.Up <= 0 {
		return true // down forever
	}
	cycle := in.spec.Up + in.spec.Down
	phase := in.now().Sub(in.start) % cycle
	return phase >= in.spec.Up
}
