package faultinject

import (
	"repro/internal/artifact"
)

// Backend wraps an artifact.Backend with the injector's faults. Since
// backend operations are best-effort by contract, injected errors and
// down windows surface as misses (Get) and dropped writes (Put) —
// exactly how a Store experiences a dead tier. Truncation corrupts
// the returned entry bytes, which the store's identity verification
// must discard; this is the wrapper that proves corruption costs a
// recompute, never a wrong result.
func (in *Injector) Backend(next artifact.Backend) artifact.Backend {
	return &backend{in: in, next: next}
}

type backend struct {
	in   *Injector
	next artifact.Backend
}

func (b *backend) Get(id string) ([]byte, bool) {
	in := b.in
	if in.downNow() {
		in.downRejects.Add(1)
		return nil, false
	}
	if in.spec.Latency > 0 && in.draw(in.spec.LatencyProb) {
		in.latencies.Add(1)
		in.sleep(in.spec.Latency)
	}
	if in.draw(in.spec.ErrProb) {
		in.errors.Add(1)
		return nil, false
	}
	data, ok := b.next.Get(id)
	if ok && len(data) > 1 && in.draw(in.spec.TruncProb) {
		in.truncations.Add(1)
		return data[:len(data)/2], true
	}
	return data, ok
}

func (b *backend) Put(id string, data []byte) {
	in := b.in
	if in.downNow() {
		in.downRejects.Add(1)
		return
	}
	if in.spec.Latency > 0 && in.draw(in.spec.LatencyProb) {
		in.latencies.Add(1)
		in.sleep(in.spec.Latency)
	}
	if in.draw(in.spec.ErrProb) {
		in.errors.Add(1)
		return
	}
	b.next.Put(id, data)
}

// Health forwards the wrapped tier's health report, if any.
func (b *backend) Health() artifact.Health {
	if hr, ok := b.next.(artifact.HealthReporter); ok {
		return hr.Health()
	}
	return artifact.Health{}
}

// FetchAll forwards bulk fetches when the wrapped tier supports them,
// applying the same fault draws per returned entry.
func (b *backend) FetchAll(ids []string) map[string][]byte {
	bf, ok := b.next.(artifact.BulkFetcher)
	if !ok {
		return nil
	}
	in := b.in
	if in.downNow() {
		in.downRejects.Add(1)
		return nil
	}
	if in.draw(in.spec.ErrProb) {
		in.errors.Add(1)
		return nil
	}
	got := bf.FetchAll(ids)
	for id, data := range got {
		if len(data) > 1 && in.draw(in.spec.TruncProb) {
			in.truncations.Add(1)
			got[id] = data[:len(data)/2]
		}
	}
	return got
}
