package faultinject

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

func timerAfter(d time.Duration) *time.Timer { return time.NewTimer(d) }

// Header set on every synthesized fault response so tests and humans
// can tell injected failures from real ones.
const Header = "X-Fault-Injected"

// Fault is the error type for injected transport-level failures
// (connection resets and down-window rejections).
type Fault struct{ Kind string }

func (f *Fault) Error() string { return "faultinject: " + f.Kind }

// Timeout and Temporary make Fault quack like a net.Error so retry
// classifiers treat it as a transient transport failure.
func (f *Fault) Timeout() bool   { return false }
func (f *Fault) Temporary() bool { return true }

// Transport wraps next (nil = http.DefaultTransport) with the
// injector's client-side faults: down-window and random connection
// resets, latency, synthesized 503s, and truncated response bodies.
func (in *Injector) Transport(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{in: in, next: next}
}

type transport struct {
	in   *Injector
	next http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if in.downNow() {
		in.downRejects.Add(1)
		closeBody(req)
		return nil, &Fault{"connection reset (down window)"}
	}
	if in.spec.Latency > 0 && in.draw(in.spec.LatencyProb) {
		in.latencies.Add(1)
		in.sleepCtx(req)
	}
	if in.draw(in.spec.ErrProb) {
		in.errors.Add(1)
		if in.draw(0.5) {
			in.resets.Add(1)
			closeBody(req)
			return nil, &Fault{"connection reset"}
		}
		closeBody(req)
		return syntheticResponse(req, http.StatusServiceUnavailable, "injected fault\n"), nil
	}
	resp, err := t.next.RoundTrip(req)
	if err == nil && resp.Body != nil && in.draw(in.spec.TruncProb) {
		in.truncations.Add(1)
		limit := int64(64)
		if resp.ContentLength > 1 {
			limit = resp.ContentLength / 2
		}
		resp.Body = &truncBody{rc: resp.Body, remaining: limit}
	}
	return resp, err
}

// sleepCtx sleeps the injected latency but wakes early if the request
// context dies.
func (in *Injector) sleepCtx(req *http.Request) {
	if req.Context() == nil {
		in.sleep(in.spec.Latency)
		return
	}
	t := timerAfter(in.spec.Latency)
	select {
	case <-t.C:
	case <-req.Context().Done():
		t.Stop()
	}
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

func syntheticResponse(req *http.Request, code int, body string) *http.Response {
	h := make(http.Header)
	h.Set(Header, "1")
	h.Set("Content-Type", "text/plain; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncBody serves the first `remaining` bytes of the real body, then
// fails the read like a dropped connection.
type truncBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (t *truncBody) Read(p []byte) (int, error) {
	if t.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.rc.Read(p)
	t.remaining -= int64(n)
	if err == nil && t.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncBody) Close() error { return t.rc.Close() }

// Handler wraps next with the injector's server-side faults. Down
// windows and injected resets abort the connection outright via
// http.ErrAbortHandler — the client sees a transport error, never an
// HTTP response — so a fleet proxy's failure classification stays
// honest: any response it does receive is a real upstream answer.
// Injected errors otherwise surface as 503s marked with the
// X-Fault-Injected header; truncation cuts the response body off
// mid-stream and then aborts.
func (in *Injector) Handler(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.downNow() {
			in.downRejects.Add(1)
			panic(http.ErrAbortHandler)
		}
		if in.spec.Latency > 0 && in.draw(in.spec.LatencyProb) {
			in.latencies.Add(1)
			in.sleepCtx(r)
		}
		if in.draw(in.spec.ErrProb) {
			in.errors.Add(1)
			if in.draw(0.5) {
				in.resets.Add(1)
				panic(http.ErrAbortHandler)
			}
			w.Header().Set(Header, "1")
			http.Error(w, "injected fault", http.StatusServiceUnavailable)
			return
		}
		if in.draw(in.spec.TruncProb) {
			in.truncations.Add(1)
			tw := &truncWriter{rw: w}
			next.ServeHTTP(tw, r)
			if tw.tripped {
				panic(http.ErrAbortHandler)
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

// truncWriter forwards roughly half of a response (judged by its
// Content-Length, or a fixed cap when unknown) and then swallows the
// rest; the Handler aborts the connection afterwards so the client
// sees a short body, not a clean EOF.
type truncWriter struct {
	rw      http.ResponseWriter
	limit   int64
	written int64
	tripped bool
	wrote   bool
}

func (t *truncWriter) Header() http.Header { return t.rw.Header() }

func (t *truncWriter) WriteHeader(code int) {
	t.arm()
	t.rw.WriteHeader(code)
}

func (t *truncWriter) arm() {
	if t.wrote {
		return
	}
	t.wrote = true
	t.limit = 64
	if cl, err := strconv.ParseInt(t.rw.Header().Get("Content-Length"), 10, 64); err == nil && cl > 1 {
		t.limit = cl / 2
	}
}

func (t *truncWriter) Write(p []byte) (int, error) {
	t.arm()
	if t.tripped {
		return len(p), nil
	}
	room := t.limit - t.written
	if room <= 0 {
		t.tripped = true
		return len(p), nil
	}
	send := p
	if int64(len(send)) > room {
		send = send[:room]
		t.tripped = true
	}
	n, err := t.rw.Write(send)
	t.written += int64(n)
	if t.tripped {
		// Push the partial body onto the wire before the handler
		// aborts, so clients observe a short read, not a clean error.
		if f, ok := t.rw.(http.Flusher); ok {
			f.Flush()
		}
	}
	if err != nil {
		return n, err
	}
	return len(p), nil
}
