package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "bee"}}
	tb.Add("x", 1.5)
	tb.Add("longer", 2)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "bee", "x", "1.5", "longer", "2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.Add("x", 1.25)
	var sb strings.Builder
	tb.CSV(&sb)
	if sb.String() != "a,b\nx,1.25\n" {
		t.Fatalf("CSV output %q", sb.String())
	}
}

func TestFloatTrimming(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2:      "2",
		0.1234: "0.1234",
		0:      "0",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "B", []string{"one", "two"}, []float64{1, 2}, 10)
	out := sb.String()
	if !strings.Contains(out, "##########") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatalf("half bar missing:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	var sb strings.Builder
	Series(&sb, "x", []float64{1, 2},
		map[string][]float64{"y": {10, 20}}, []string{"y"})
	want := "x,y\n1,10\n2,20\n"
	if sb.String() != want {
		t.Fatalf("Series output %q, want %q", sb.String(), want)
	}
}
