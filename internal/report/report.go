// Package report renders the experiment results as aligned ASCII
// tables, horizontal bar charts and CSV series — the textual equivalent
// of WCRT's "statistical and visual functions" (§2.2).
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(width) {
				parts[i] = pad(c, width[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Bars renders a labelled horizontal bar chart of values scaled to
// maxWidth characters.
func Bars(w io.Writer, title string, labels []string, values []float64, maxWidth int) {
	if title != "" {
		fmt.Fprintf(w, "== %s ==\n", title)
	}
	lw, maxV := 0, 0.0
	for i, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, l := range labels {
		n := int(values[i] / maxV * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "%s  %s %s\n", pad(l, lw), strings.Repeat("#", n), trimFloat(values[i]))
	}
}

// Series writes an x/y CSV (the figure-curve format).
func Series(w io.Writer, xName string, xs []float64, cols map[string][]float64, order []string) {
	fmt.Fprintf(w, "%s", xName)
	for _, name := range order {
		fmt.Fprintf(w, ",%s", name)
	}
	fmt.Fprintln(w)
	for i, x := range xs {
		fmt.Fprintf(w, "%s", trimFloat(x))
		for _, name := range order {
			fmt.Fprintf(w, ",%s", trimFloat(cols[name][i]))
		}
		fmt.Fprintln(w)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
