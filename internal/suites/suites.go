// Package suites models the comparator benchmark suites the paper
// measures against the representative big data workloads (§4.3):
// SPEC CPU2006 (integer and floating point halves), PARSEC 3.0,
// HPCC 1.4, CloudSuite 1.0 and TPC-C.
//
// Each suite is a set of mini-kernels that reproduces the dominant
// micro-architectural pattern of the original benchmark — dense FP
// loops for HPCC, pointer chasing and branchy state machines for
// SPECINT, stencils for SPECFP, small-footprint data-parallel loops for
// PARSEC, request-driven large-code services for CloudSuite, and B-tree
// transactions for TPC-C. They only need to sit in the right region of
// the 45-metric space; none of them claims cycle fidelity to the
// original programs.
package suites

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/trace"
	"repro/internal/stack"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// Suite names as used in the paper's figures.
const (
	NameSPECINT    = "SPECINT"
	NameSPECFP     = "SPECFP"
	NamePARSEC     = "PARSEC"
	NameHPCC       = "HPCC"
	NameCloudSuite = "CloudSuite"
	NameTPCC       = "TPC-C"
)

// All returns every comparator suite keyed by name.
func All() map[string][]workloads.Workload {
	return map[string][]workloads.Workload{
		NameSPECINT:    SPECINT(),
		NameSPECFP:     SPECFP(),
		NamePARSEC:     PARSEC(),
		NameHPCC:       HPCC(),
		NameCloudSuite: CloudSuite(),
		NameTPCC:       TPCC(),
	}
}

// Names returns the suite names in the paper's figure order.
func Names() []string {
	return []string{NameSPECINT, NameSPECFP, NamePARSEC, NameHPCC, NameCloudSuite, NameTPCC}
}

func native(id string, f func(*workloads.Ctx)) workloads.Workload {
	return workloads.Workload{
		ID:     id,
		Kernel: workloads.KernelFunc{KernelName: id, F: f},
		Stack:  stack.Native(),
	}
}

// streamLoop emits a sequential load->FP->store streaming loop over a
// region (the STREAM/lbm pattern).
func streamLoop(c *workloads.Ctx, base uint64, bytesN int, fpOps int) {
	e := c.E
	top := e.Here()
	for off := 0; off < bytesN && e.OK(); off += 8 {
		v := e.Load(base+uint64(off), 8, isa.NoReg)
		last := v
		for f := 0; f < fpOps; f++ {
			last = e.FP(isa.FPArith, last, isa.NoReg)
		}
		e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
		e.Store(base+uint64(off), 8, last, isa.NoReg)
		e.Loop(top, off+8 < bytesN, last)
	}
}

// chaseLoop emits a dependent pointer chase: each load's address
// depends on the previous load (the mcf/canneal pattern that caps IPC
// near the memory latency).
func chaseLoop(c *workloads.Ctx, base uint64, entries int, work int) {
	e := c.E
	r := c.Rng
	idx := r.Intn(entries)
	prev := isa.NoReg
	top := e.Here()
	for n := 0; e.OK(); n++ {
		a := e.Int(isa.IntAddr, prev, isa.NoReg)
		prev = e.Load(base+uint64(idx)*64, 8, a)
		for w := 0; w < work; w++ {
			e.Int(isa.IntAlu, prev, isa.NoReg)
		}
		idx = int(xrand.Hash64(uint64(idx)+1) % uint64(entries))
		e.Loop(top, true, prev)
	}
}

// dgemmLoop emits a register-blocked dense matrix-multiply inner loop:
// long independent FP chains with high ILP (the HPL/DGEMM pattern).
func dgemmLoop(c *workloads.Ctx, aBase, bBase uint64, n int) {
	e := c.E
	accs := [4]isa.Reg{e.Fixed(1), e.Fixed(2), e.Fixed(3), e.Fixed(4)}
	top := e.Here()
	for i := 0; e.OK(); i++ {
		ar := e.Load(aBase+uint64(i%n)*8, 8, isa.NoReg)
		br := e.Load(bBase+uint64((i*17)%n)*8, 8, isa.NoReg)
		m := e.FP(isa.FPArith, ar, br)
		e.FPTo(accs[i%4], isa.FPArith, accs[i%4], m)
		m2 := e.FP(isa.FPArith, ar, br)
		e.FPTo(accs[(i+1)%4], isa.FPArith, accs[(i+1)%4], m2)
		e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
		e.Loop(top, true, m)
	}
}

// mixKernel emits a Stream with the given mix over a dedicated code
// image walked through eight phase entry points — the generic model
// for branchy codes whose working set is a few dozen to a few hundred
// kilobytes of text.
func mixKernel(c *workloads.Ctx, m trace.Mix, dataKB int, random bool) {
	base := c.L.Alloc(uint64(dataKB) << 10)
	var w *trace.Walk
	if random {
		w = trace.NewRandomWalk(base, uint64(dataKB)<<10)
	} else {
		w = trace.NewWalk(base, uint64(dataKB)<<10, 16)
	}
	code := trace.NewRoutine(c.L, "mix/code", 96<<10)
	st := trace.Stream{Mix: m, Pri: w, Rng: c.Rng}
	// The working phase changes slowly: long warm stretches in one
	// 12 KB region, with the full 96 KB image covered over a run.
	for n := uint64(0); c.E.OK(); n++ {
		slot := (n / 16) % 8
		st.Emit(c.E, code, slot*(code.Size/8), 4096)
	}
}

// phaseCode models the rest of a benchmark's working code (the phases
// around the hot loop): kernels call emit() periodically to walk a
// ~100 KB text image at stable entry points, which is what gives the
// PARSEC-class workloads their ~128 KB instruction footprint (paper
// §5.4).
type phaseCode struct {
	rtn  *trace.Routine
	st   trace.Stream
	slot uint64
}

func newPhaseCode(c *workloads.Ctx, kb int) *phaseCode {
	base := c.L.Alloc(256 << 10)
	return &phaseCode{
		rtn: trace.NewRoutine(c.L, "phase/code", uint64(kb)<<10),
		st: trace.Stream{
			Mix: trace.Mix{Load: 0.26, Store: 0.1, Branch: 0.16, IntAddr: 0.24,
				FPArith: 0.06, Taken: 0.3, Noise: 0.01, Chain: 0.35},
			Pri: trace.NewWalk(base, 256<<10, 16),
			Rng: c.Rng,
		},
	}
}

func (p *phaseCode) emit(c *workloads.Ctx, n int) {
	pos := c.E.Pos()
	c.E.Call(p.rtn)
	p.st.Emit(c.E, p.rtn, (p.slot%16)*(p.rtn.Size/16), n)
	c.E.Ret()
	c.E.Restore(pos)
	p.slot++
}
