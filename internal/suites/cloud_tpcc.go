package suites

import (
	"repro/internal/datagen"
	"repro/internal/sim/isa"
	"repro/internal/sim/trace"
	"repro/internal/stack"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// cloudService is the CloudSuite service-stack model: even larger and
// colder request paths than HBase (Java service frameworks plus the
// full web/serving middleware), which is what drives CloudSuite's
// average L1I MPKI of 32 in the paper's Fig. 4.
func cloudService() stack.Descriptor {
	d := stack.HBase()
	d.Name = "CloudService"
	d.CodeKB = 3072
	d.ColdFrac = 0.68
	d.ColdZipfS = 1.25
	d.RequestInsts = 6200
	d.IndirectEvery = 40
	return d
}

// CloudSuite returns the six scale-out workloads of CloudSuite 1.0
// (§4.3): data serving, web search, media streaming, web serving,
// graph analytics (MapReduce-based in 1.0) and data analytics
// (a Hadoop Mahout classifier).
func CloudSuite() []workloads.Workload {
	svc := cloudService()
	return []workloads.Workload{
		{
			ID: "CS-DataServing",
			Kernel: &workloads.HBaseRead{
				Scale: workloads.KVScale{Records: 50000, ValBytes: 1024, Seed: 0xCA55},
			},
			Stack: svc, Category: workloads.Service, DataSet: "YCSB-like store",
		},
		{
			ID:     "CS-WebSearch",
			Kernel: workloads.KernelFunc{KernelName: "WebSearch", F: webSearch},
			Stack:  svc, Category: workloads.Service, DataSet: "Nutch-like index",
		},
		{
			ID:     "CS-MediaStreaming",
			Kernel: workloads.KernelFunc{KernelName: "MediaStreaming", F: mediaStream},
			Stack:  svc, Category: workloads.Service, DataSet: "video segments",
		},
		{
			ID:     "CS-WebServing",
			Kernel: workloads.KernelFunc{KernelName: "WebServing", F: webServe},
			Stack:  svc, Category: workloads.Service, DataSet: "Olio-like pages",
		},
		{
			ID:     "CS-GraphAnalytics",
			Kernel: &workloads.PageRank{Cfg: cloudGraph()},
			Stack:  stack.Hadoop(), Category: workloads.DataAnalysis, DataSet: "TunkRank graph",
		},
		{
			ID:     "CS-DataAnalytics",
			Kernel: &workloads.NaiveBayes{Cfg: cloudText(), Classes: 5},
			Stack:  stack.Hadoop(), Category: workloads.DataAnalysis, DataSet: "Mahout corpus",
		},
	}
}

func cloudGraph() datagen.GraphConfig {
	return datagen.GraphConfig{Nodes: 6000, AvgDegree: 7, Seed: 0xC10}
}

func cloudText() datagen.TextConfig {
	cfg := datagen.DefaultWiki()
	cfg.Seed = 0xC1D
	cfg.Lines = 3000
	return cfg
}

// webSearch scores postings against a query: posting-list scans with
// per-hit scoring FP and an accumulator heap — index-serving shape.
func webSearch(c *workloads.Ctx) {
	postings := c.L.AllocArray(1<<21, 4)
	scores := c.L.AllocArray(8192, 8)
	e, rt := c.E, c.RT
	reqTop := e.Here()
	for e.OK() {
		rt.Request(512)
		c.Records++
		start := c.Rng.Intn(1 << 20)
		n := 64 + c.Rng.Intn(192)
		scanTop := e.Here()
		for i := 0; i < n && e.OK(); i++ {
			d := loadIdxS(e, postings, start+i, 4)
			sc := e.FP(isa.FPArith, d, isa.NoReg)
			slot := int(xrand.Hash64(uint64(start+i)) % 8192)
			old := loadIdxS(e, scores, slot, 8)
			s2 := e.FPTo(old, isa.FPArith, old, sc)
			e.Store(scores+uint64(slot)*8, 8, s2, isa.NoReg)
			hit := i%13 == 0
			e.Branch(hit, s2)
			e.Loop(scanTop, i+1 < n, d)
		}
		c.InBytes += uint64(n * 4)
		c.OutBytes += 512
		e.Loop(reqTop, true, isa.NoReg)
	}
}

// mediaStream pumps segment bytes through protocol framing: long
// sequential copies with light per-packet branching.
func mediaStream(c *workloads.Ctx) {
	segs := c.L.Alloc(64 << 20)
	out := c.L.Alloc(1 << 20)
	e, rt := c.E, c.RT
	pos := uint64(0)
	reqTop := e.Here()
	for e.OK() {
		rt.Request(1400)
		c.Records++
		cpTop := e.Here()
		for b := 0; b < 1400 && e.OK(); b += 16 {
			v := e.Load(segs+(pos+uint64(b))%(64<<20), 8, isa.NoReg)
			e.Store(out+uint64(b%(1<<20)), 8, v, isa.NoReg)
			e.Loop(cpTop, b+16 < 1400, v)
		}
		e.Branch(pos%7000 < 1400, isa.NoReg) // segment boundary check
		pos += 1400
		c.InBytes += 1400
		c.OutBytes += 1400
		e.Loop(reqTop, true, isa.NoReg)
	}
}

// webServe renders dynamic pages: interpreter dispatch over a huge
// code image with session-state lookups.
func webServe(c *workloads.Ctx) {
	state := c.L.Alloc(16 << 20)
	interp := trace.NewRoutine(c.L, "php/ops", 1<<20)
	st := trace.Stream{
		Mix: trace.Mix{Load: 0.28, Store: 0.11, Branch: 0.21, IntAddr: 0.21,
			Taken: 0.32, Noise: 0.03, Chain: 0.4, CallEvery: 28},
		Pri: trace.NewRandomWalk(state, 2<<20),
		Rng: c.Rng,
	}
	e, rt := c.E, c.RT
	for e.OK() {
		rt.Request(2048)
		c.Records++
		off := uint64(c.Rng.Intn(64)) * (interp.Size / 64)
		st.Emit(e, interp, off, 1500)
		c.OutBytes += 2048
	}
}

func loadIdxS(e *trace.Emitter, base uint64, idx int, elem uint64) isa.Reg {
	a := e.Int(isa.IntAddr, isa.NoReg, isa.NoReg)
	return e.Load(base+uint64(idx)*elem, uint8(elem), a)
}

// TPCC returns the OLTP comparator (§4.3: tpcc-uva): New-Order and
// Payment transactions over B-tree tables — index descents, row
// updates and redo logging. The paper singles out its very high branch
// ratio (30%).
func TPCC() []workloads.Workload {
	return []workloads.Workload{
		{
			ID:     "TPC-C",
			Kernel: workloads.KernelFunc{KernelName: "tpcc", F: tpccTxns},
			Stack:  stack.MySQL(), Category: workloads.Service, DataSet: "TPC-C tables",
		},
	}
}

func tpccTxns(c *workloads.Ctx) {
	const rows = 1 << 17
	items := c.L.AllocArray(rows, 64)
	stock := c.L.AllocArray(rows, 64)
	custs := c.L.AllocArray(rows, 64)
	wal := c.L.Alloc(16 << 20)
	keys := make([]uint64, rows)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	keysBase := c.L.AllocArray(rows, 8)
	e, rt := c.E, c.RT
	walOff := uint64(0)
	txnTop := e.Here()
	for e.OK() {
		rt.Request(256)
		c.Records++
		// New-Order: ~10 item lookups, each a B-tree descent plus a
		// stock row update; then customer read and log append.
		nItems := 5 + c.Rng.Intn(10)
		itemTop := e.Here()
		for it := 0; it < nItems && e.OK(); it++ {
			key := keys[c.Rng.Intn(rows)]
			at := bsearchEmitS(e, keysBase, keys, key)
			iv := e.Load(items+uint64(at%rows)*64, 8, isa.NoReg)
			qty := e.Load(stock+uint64(at%rows)*64, 8, iv)
			ok := it%9 != 8 // stock check branch
			e.Branch(ok, qty)
			q2 := e.IntTo(qty, isa.IntAlu, qty, isa.NoReg)
			e.Store(stock+uint64(at%rows)*64, 8, q2, isa.NoReg)
			e.Loop(itemTop, it+1 < nItems, q2)
		}
		cv := e.Load(custs+uint64(c.Rng.Intn(rows))*64, 8, isa.NoReg)
		e.Int(isa.IntAlu, cv, isa.NoReg)
		logTop := e.Here()
		for b := 0; b < 256 && e.OK(); b += 32 {
			e.Store(wal+(walOff+uint64(b))%(16<<20), 8, cv, isa.NoReg)
			e.Loop(logTop, b+32 < 256, cv)
		}
		walOff += 256
		c.InBytes += 64 * uint64(nItems)
		c.OutBytes += 256
		e.Loop(txnTop, true, cv)
	}
}

// bsearchEmitS is a local binary search emission (the workloads
// package's helper is unexported).
func bsearchEmitS(e *trace.Emitter, base uint64, keys []uint64, target uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		a := e.Int(isa.IntAddr, isa.NoReg, isa.NoReg)
		v := e.Load(base+uint64(mid)*8, 8, a)
		goRight := keys[mid] < target
		e.Branch(goRight, v)
		if goRight {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
