package suites

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// PARSEC returns the CMP suite model (§4.3: PARSEC 3.0 with native
// inputs): small-footprint data-parallel kernels whose instruction
// working sets fit the L1I — the contrast the paper's §5.4 footprint
// study draws against Hadoop. Average IPC near 1.28.
func PARSEC() []workloads.Workload {
	return []workloads.Workload{
		native("blackscholes", func(c *workloads.Ctx) {
			// Per-option closed-form pricing: independent FP chains
			// with divides, plus the surrounding phase code.
			opts := c.L.AllocArray(1<<20, 8)
			ph := newPhaseCode(c, 96)
			e := c.E
			top := e.Here()
			for i := 0; e.OK(); i++ {
				s := e.Load(opts+uint64(i%(1<<20))*8, 8, isa.NoReg)
				d1 := e.FP(isa.FPArith, s, isa.NoReg)
				d1 = e.FP(isa.FPArith, d1, isa.NoReg)
				d2 := e.FP(isa.FPDiv, d1, isa.NoReg)
				p := e.FP(isa.FPArith, d2, isa.NoReg)
				e.Store(opts+uint64(i%(1<<20))*8, 8, p, isa.NoReg)
				e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
				if i%96 == 95 {
					ph.emit(c, 180)
				}
				e.Loop(top, true, p)
			}
		}),
		native("canneal", func(c *workloads.Ctx) {
			// Simulated annealing of a netlist: random swaps over a
			// large graph — cache-hostile pointer chasing — plus the
			// surrounding bookkeeping phases.
			base := c.L.Alloc(32 << 20)
			ph := newPhaseCode(c, 96)
			e := c.E
			idx := 0
			prev := isa.NoReg
			top := e.Here()
			for n := 0; e.OK(); n++ {
				a := e.Int(isa.IntAddr, prev, isa.NoReg)
				prev = e.Load(base+uint64(idx)*64, 8, a)
				e.Int(isa.IntAlu, prev, isa.NoReg)
				e.Int(isa.IntAlu, prev, isa.NoReg)
				idx = int(xrand.Hash64(uint64(idx)+1) % uint64((32<<20)/64))
				if n%160 == 159 {
					ph.emit(c, 160)
				}
				e.Loop(top, true, prev)
			}
		}),
		native("streamcluster", func(c *workloads.Ctx) {
			// Online clustering: distance computation loops (the same
			// shape as the K-means kernel, native scale).
			pts := c.L.AllocArray(1<<19, 8)
			ctr := c.L.AllocArray(1024, 8)
			ph := newPhaseCode(c, 96)
			e := c.E
			acc := e.Fixed(1)
			top := e.Here()
			for i := 0; e.OK(); i++ {
				a := e.Load(pts+uint64(i%(1<<19))*8, 8, isa.NoReg)
				b := e.Load(ctr+uint64(i%1024)*8, 8, isa.NoReg)
				d := e.FP(isa.FPArith, a, b)
				e.FPTo(acc, isa.FPArith, acc, d)
				better := xrand.Hash64(uint64(i))%7 == 0
				e.Branch(better, acc)
				if i%128 == 127 {
					ph.emit(c, 140)
				}
				e.Loop(top, true, d)
			}
		}),
		native("fluidanimate", func(c *workloads.Ctx) {
			// SPH fluid: neighbour-grid FP with moderate branches.
			mixKernel(c, trace.Mix{
				Load: 0.27, Store: 0.1, Branch: 0.12, IntAddr: 0.04,
				FPAddr: 0.14, FPArith: 0.24, Taken: 0.5, Noise: 0.04,
				Chain: 0.35,
			}, 16<<10, false)
		}),
		native("bodytrack", func(c *workloads.Ctx) {
			mixKernel(c, trace.Mix{
				Load: 0.26, Store: 0.09, Branch: 0.14, IntAddr: 0.1,
				FPAddr: 0.08, FPArith: 0.18, Taken: 0.45, Noise: 0.05,
				Chain: 0.4,
			}, 8<<10, false)
		}),
		native("swaptions", func(c *workloads.Ctx) {
			// Monte-Carlo HJM: FP with multiplies, high ILP, plus the
			// path-setup phase code.
			a := c.L.AllocArray(4096, 8)
			b := c.L.AllocArray(4096, 8)
			ph := newPhaseCode(c, 80)
			e := c.E
			accs := [2]isa.Reg{e.Fixed(1), e.Fixed(2)}
			top := e.Here()
			for i := 0; e.OK(); i++ {
				ar := e.Load(a+uint64(i%4096)*8, 8, isa.NoReg)
				br := e.Load(b+uint64((i*17)%4096)*8, 8, isa.NoReg)
				m := e.FP(isa.FPArith, ar, br)
				e.FPTo(accs[i%2], isa.FPArith, accs[i%2], m)
				e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
				if i%112 == 111 {
					ph.emit(c, 150)
				}
				e.Loop(top, true, m)
			}
		}),
		native("dedup", func(c *workloads.Ctx) {
			// Content-defined chunking: rolling hash + hash-table
			// probes — integer heavy.
			mixKernel(c, trace.Mix{
				Load: 0.3, Store: 0.12, Branch: 0.15, IntAddr: 0.2,
				IntMul: 0.05, Taken: 0.4, Noise: 0.05, Chain: 0.45,
			}, 1024, false)
		}),
		native("x264-like", func(c *workloads.Ctx) {
			// Motion estimation SAD loops: sequential integer loads,
			// very predictable, plus encoder phase code.
			frame := c.L.Alloc(4 << 20)
			ph := newPhaseCode(c, 96)
			e := c.E
			acc := e.Fixed(1)
			top := e.Here()
			i := 0
			for off := 0; e.OK(); off += 8 {
				a := e.Load(frame+uint64(off%(4<<20)), 8, isa.NoReg)
				b := e.Load(frame+uint64((off+1<<19)%(4<<20)), 8, isa.NoReg)
				d := e.Int(isa.IntAlu, a, b)
				e.IntTo(acc, isa.IntAlu, acc, d)
				if i%144 == 143 {
					ph.emit(c, 130)
				}
				i++
				e.Loop(top, true, d)
			}
		}),
	}
}

// HPCC returns the HPC suite model (§4.3: all seven HPCC 1.4 kernels).
// FP-dominated dense kernels with the highest average IPC (~1.5) —
// except RandomAccess, which is the canonical cache-hostile GUPS loop.
func HPCC() []workloads.Workload {
	return []workloads.Workload{
		native("HPL", func(c *workloads.Ctx) {
			a := c.L.AllocArray(16384, 8)
			b := c.L.AllocArray(16384, 8)
			dgemmLoop(c, a, b, 16384)
		}),
		native("DGEMM", func(c *workloads.Ctx) {
			a := c.L.AllocArray(8192, 8)
			b := c.L.AllocArray(8192, 8)
			dgemmLoop(c, a, b, 8192)
		}),
		native("STREAM", func(c *workloads.Ctx) {
			buf := c.L.Alloc(64 << 20)
			for c.E.OK() {
				streamLoop(c, buf, 64<<20, 1)
			}
		}),
		native("PTRANS", func(c *workloads.Ctx) {
			// Blocked transpose: strided loads, sequential stores.
			src := c.L.Alloc(32 << 20)
			dst := c.L.Alloc(32 << 20)
			e := c.E
			n := uint64(2048) // 2048x2048 doubles
			top := e.Here()
			for i := uint64(0); e.OK(); i++ {
				r, cc := (i/n)%n, i%n
				v := e.Load(src+(cc*n+r)*8, 8, isa.NoReg)
				e.Store(dst+(r*n+cc)*8, 8, v, isa.NoReg)
				e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
				e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
				e.Loop(top, true, v)
			}
		}),
		native("RandomAccess", func(c *workloads.Ctx) {
			// GUPS: random 8-byte read-modify-writes over a huge table.
			tbl := c.L.Alloc(256 << 20)
			e := c.E
			top := e.Here()
			for i := uint64(1); e.OK(); i++ {
				addr := tbl + (xrand.Hash64(i)%(256<<20))&^7
				v := e.Load(addr, 8, isa.NoReg)
				v = e.IntTo(v, isa.IntAlu, v, isa.NoReg)
				e.Store(addr, 8, v, isa.NoReg)
				e.Int(isa.IntAddr, isa.NoReg, isa.NoReg)
				e.Loop(top, true, v)
			}
		}),
		native("FFT", func(c *workloads.Ctx) {
			// Butterfly passes: strided FP loads/stores.
			buf := c.L.Alloc(16 << 20)
			e := c.E
			stride := uint64(64)
			top := e.Here()
			for i := uint64(0); e.OK(); i++ {
				a := e.Load(buf+(i*8)%(16<<20), 8, isa.NoReg)
				b := e.Load(buf+(i*8+stride*8)%(16<<20), 8, isa.NoReg)
				s := e.FP(isa.FPArith, a, b)
				d := e.FP(isa.FPArith, a, b)
				e.Store(buf+(i*8)%(16<<20), 8, s, isa.NoReg)
				e.Store(buf+(i*8+stride*8)%(16<<20), 8, d, isa.NoReg)
				e.Int(isa.FPAddr, isa.NoReg, isa.NoReg)
				e.Loop(top, true, s)
				if i%1024 == 0 {
					stride = 8 << (i / 1024 % 10)
				}
			}
		}),
		native("b_eff", func(c *workloads.Ctx) {
			// Bandwidth/latency microbenchmark: message packing loops.
			buf := c.L.Alloc(8 << 20)
			e := c.E
			top := e.Here()
			for off := 0; e.OK(); off += 16 {
				v := e.Load(buf+uint64(off%(8<<20)), 8, isa.NoReg)
				e.Store(buf+uint64((off+4<<20)%(8<<20)), 8, v, isa.NoReg)
				e.Int(isa.IntAddr, v, isa.NoReg)
				e.Loop(top, true, v)
			}
		}),
	}
}
