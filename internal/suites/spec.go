package suites

import (
	"repro/internal/sim/isa"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
	"repro/internal/xrand"
)

// SPECINT returns the integer half of the SPEC CPU2006 model: pointer
// chasing (mcf), compression state machines (bzip2), integer dynamic
// programming (hmmer), branchy evaluation (gobmk), virtual dispatch
// (xalancbmk) and string hashing (perlbench). The blend lands near the
// paper's SPECINT operating point: integer-dominated, moderate
// branches, IPC around 0.9.
func SPECINT() []workloads.Workload {
	return []workloads.Workload{
		native("mcf-like", func(c *workloads.Ctx) {
			// Network simplex: dependent pointer chase over 48 MB.
			base := c.L.Alloc(48 << 20)
			chaseLoop(c, base, (48<<20)/64, 4)
		}),
		native("bzip2-like", func(c *workloads.Ctx) {
			// Move-to-front + histogram over a buffer: sequential loads,
			// table stores, data-dependent branches.
			buf := c.L.Alloc(8 << 20)
			tbl := c.L.AllocArray(4096, 8)
			e := c.E
			hist := make([]int, 4096)
			top := e.Here()
			for off := 0; e.OK(); off += 8 {
				v := e.Load(buf+uint64(off%(8<<20)), 8, isa.NoReg)
				h := int(xrand.Hash64(uint64(off)) % 4096)
				tv := e.Load(tbl+uint64(h)*8, 8, v)
				tv = e.IntTo(tv, isa.IntAlu, tv, isa.NoReg)
				e.Store(tbl+uint64(h)*8, 8, tv, isa.NoReg)
				hist[h]++
				rare := hist[h]%61 == 0
				e.Branch(rare, tv)
				e.Int(isa.IntAlu, v, tv)
				e.Loop(top, true, tv)
			}
		}),
		native("hmmer-like", func(c *workloads.Ctx) {
			// Integer DP over a row: independent max/add operations,
			// very high ILP, predictable branches.
			row := c.L.AllocArray(4096, 8)
			e := c.E
			top := e.Here()
			for i := 0; e.OK(); i++ {
				a := e.Load(row+uint64(i%4096)*8, 8, isa.NoReg)
				b := e.Load(row+uint64((i+1)%4096)*8, 8, isa.NoReg)
				m1 := e.Int(isa.IntAlu, a, isa.NoReg)
				m2 := e.Int(isa.IntAlu, b, isa.NoReg)
				mx := e.Int(isa.IntAlu, m1, m2)
				e.Store(row+uint64(i%4096)*8, 8, mx, isa.NoReg)
				e.Int(isa.IntAddr, isa.NoReg, isa.NoReg)
				e.Loop(top, true, mx)
			}
		}),
		native("gobmk-like", func(c *workloads.Ctx) {
			// Board evaluation: table lookups with many data-dependent
			// branches (high misprediction).
			mixKernel(c, trace.Mix{
				Load: 0.24, Store: 0.08, Branch: 0.24, IntAddr: 0.2,
				IntMul: 0.01, Taken: 0.4, Noise: 0.25, Chain: 0.4,
			}, 512, true)
		}),
		native("xalancbmk-like", func(c *workloads.Ctx) {
			// XSLT processing: virtual dispatch over a large code image.
			big := trace.NewRoutine(c.L, "xalanc/code", 768<<10)
			base := c.L.Alloc(8 << 20)
			st := trace.Stream{
				Mix: trace.Mix{Load: 0.27, Store: 0.1, Branch: 0.19,
					IntAddr: 0.23, Taken: 0.3, Noise: 0.03, Chain: 0.35,
					CallEvery: 40},
				Pri: trace.NewRandomWalk(base, 6<<20),
				Rng: c.Rng,
			}
			for c.E.OK() {
				off := uint64(c.Rng.Intn(16)) * (big.Size / 16)
				st.Emit(c.E, big, off, 2048)
			}
		}),
		native("perlbench-like", func(c *workloads.Ctx) {
			// Interpreter dispatch + string hashing.
			mixKernel(c, trace.Mix{
				Load: 0.28, Store: 0.11, Branch: 0.22, IntAddr: 0.21,
				IntMul: 0.02, Taken: 0.45, Noise: 0.08, Chain: 0.45,
			}, 2048, true)
		}),
	}
}

// SPECFP returns the floating-point half of the SPEC CPU2006 model:
// lattice-Boltzmann streaming (lbm), dense molecular kernels (namd),
// sparse linear programming (soplex) and branchy ray shading (povray).
// FP-dominated with larger basic blocks, IPC around 1.1.
func SPECFP() []workloads.Workload {
	return []workloads.Workload{
		native("lbm-like", func(c *workloads.Ctx) {
			grid := c.L.Alloc(48 << 20)
			for c.E.OK() {
				streamLoop(c, grid, 48<<20, 3)
			}
		}),
		native("namd-like", func(c *workloads.Ctx) {
			a := c.L.AllocArray(8192, 8)
			b := c.L.AllocArray(8192, 8)
			dgemmLoop(c, a, b, 8192)
		}),
		native("soplex-like", func(c *workloads.Ctx) {
			// Sparse FP gather: indexed loads into FP accumulation.
			idxB := c.L.AllocArray(1<<20, 4)
			valB := c.L.AllocArray(1<<21, 8)
			e := c.E
			acc := e.Fixed(1)
			top := e.Here()
			for i := 0; e.OK(); i++ {
				iv := e.Load(idxB+uint64(i%(1<<20))*4, 4, isa.NoReg)
				a := e.Int(isa.FPAddr, iv, isa.NoReg)
				v := e.Load(valB+(xrand.Hash64(uint64(i))%(1<<21))*8, 8, a)
				e.FPTo(acc, isa.FPArith, acc, v)
				e.Loop(top, true, v)
			}
		}),
		native("povray-like", func(c *workloads.Ctx) {
			mixKernel(c, trace.Mix{
				Load: 0.24, Store: 0.08, Branch: 0.14, IntAddr: 0.05,
				FPAddr: 0.12, FPArith: 0.3, Taken: 0.4, Noise: 0.06,
				Chain: 0.4,
			}, 1024, false)
		}),
	}
}
