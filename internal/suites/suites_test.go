package suites

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim/isa"
	"repro/internal/sim/machine"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
)

func TestAllSuitesPresent(t *testing.T) {
	all := All()
	want := map[string]int{
		NameSPECINT: 6, NameSPECFP: 4, NamePARSEC: 8,
		NameHPCC: 7, NameCloudSuite: 6, NameTPCC: 1,
	}
	for name, n := range want {
		if len(all[name]) != n {
			t.Errorf("%s has %d workloads, want %d", name, len(all[name]), n)
		}
	}
	if len(Names()) != 6 {
		t.Fatal("Names() must list the paper's six comparators")
	}
}

func TestEverySuiteWorkloadRuns(t *testing.T) {
	for name, list := range All() {
		for _, w := range list {
			w := w
			t.Run(name+"/"+w.ID, func(t *testing.T) {
				t.Parallel()
				var c trace.CountProbe
				res := workloads.Run(w, &c, 40_000)
				if res.Insts < 30_000 {
					t.Fatalf("emitted only %d instructions", res.Insts)
				}
			})
		}
	}
}

func run(t *testing.T, w workloads.Workload, budget int64) metrics.Vector {
	t.Helper()
	m := machine.New(machine.XeonE5645())
	workloads.Run(w, m, budget)
	m.Finish()
	return metrics.Compute(m)
}

func avg(t *testing.T, list []workloads.Workload, idx int, budget int64) float64 {
	t.Helper()
	s := 0.0
	for _, w := range list {
		s += run(t, w, budget)[idx]
	}
	return s / float64(len(list))
}

func TestSuiteOperatingPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("suite characterization is slow")
	}
	const budget = 400_000
	// HPCC is FP-dominated; SPECINT is not (paper Fig. 1).
	hpccFP := avg(t, HPCC(), metrics.MixFP, budget)
	intFP := avg(t, SPECINT(), metrics.MixFP, budget)
	if hpccFP < 0.1 {
		t.Errorf("HPCC fp share %.2f too low", hpccFP)
	}
	if intFP > 0.05 {
		t.Errorf("SPECINT fp share %.2f too high", intFP)
	}
	// CloudSuite has by far the largest L1I MPKI (paper Fig. 4: 32).
	csL1I := avg(t, CloudSuite(), metrics.L1IMPKI, budget)
	parsecL1I := avg(t, PARSEC(), metrics.L1IMPKI, budget)
	if csL1I < parsecL1I*5 {
		t.Errorf("CloudSuite L1I %.1f not >> PARSEC %.1f", csL1I, parsecL1I)
	}
	// TPC-C's branch ratio is the outlier the paper calls out (30%).
	tpccBr := avg(t, TPCC(), metrics.MixBranch, budget)
	if tpccBr < 0.2 {
		t.Errorf("TPC-C branch ratio %.2f, want >= 0.2 (paper: 0.30)", tpccBr)
	}
	// HPCC posts the highest IPC of the comparators (paper Fig. 3).
	hpccIPC := avg(t, HPCC(), metrics.IPC, budget)
	specintIPC := avg(t, SPECINT(), metrics.IPC, budget)
	if hpccIPC <= specintIPC {
		t.Errorf("HPCC IPC %.2f <= SPECINT %.2f", hpccIPC, specintIPC)
	}
}

func TestPARSECSmallInstructionFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fp := avg(t, PARSEC(), metrics.CodeFootprintKB, 300_000)
	if fp > 256 {
		t.Errorf("PARSEC code footprint %.0f KB; the paper's §5.4 contrast needs ~128 KB", fp)
	}
}

func TestNativeKernelsEmitMemOps(t *testing.T) {
	var c trace.CountProbe
	workloads.Run(HPCC()[2], &c, 30_000) // STREAM
	if c.ByOp[isa.Load] == 0 || c.ByOp[isa.Store] == 0 {
		t.Fatal("STREAM emitted no loads/stores")
	}
}
