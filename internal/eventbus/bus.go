// Package eventbus is the serving stack's in-process publish/subscribe
// bus: a bounded, non-blocking fan-out from the hot layers (engine,
// flights, store, fleet) to any number of live observers (SSE streams,
// tests, the per-job backlog).
//
// The contract is built around one rule: a publisher never blocks and
// never allocates for nobody. Every subscriber owns a fixed-size ring
// buffer; a subscriber that falls behind loses its *oldest* buffered
// events (counted per subscriber and bus-wide), never slows the
// publisher, and never affects other subscribers. Publishing with no
// subscriber attached is a single atomic load — instrumentation sites
// additionally gate on Active() so they skip building the event payload
// entirely, which keeps the engine's no-observer cost at zero.
//
// Ordering is deterministic per topic: events on one topic carry a
// strictly increasing sequence number assigned under the bus lock, and
// every subscriber observes its surviving events in that order (drops
// create gaps, never reordering). Cross-topic order is not defined.
package eventbus

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one bus message. Data is owned by the bus after publish —
// callers must not mutate the map they passed in.
type Event struct {
	// Seq is the per-topic sequence number, 1-based and strictly
	// increasing. Gaps in a subscriber's view mean dropped events.
	Seq   uint64         `json:"seq"`
	Topic string         `json:"topic"`
	Type  string         `json:"type"`
	Time  time.Time      `json:"time"`
	Data  map[string]any `json:"data,omitempty"`
}

// DefaultBuffer is the per-subscriber ring capacity when Subscribe is
// given a non-positive size.
const DefaultBuffer = 256

// Bus is the process-wide event fan-out. The zero value is not usable;
// construct with New. A nil *Bus is a valid no-op publisher.
type Bus struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}
	seq  map[string]uint64 // per-topic sequence counters

	active    atomic.Int64 // live subscriber count — the publish fast-path gate
	published atomic.Int64
	dropped   atomic.Int64
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{subs: map[*Subscriber]struct{}{}, seq: map[string]uint64{}}
}

// Active reports whether any subscriber is attached. Instrumentation
// sites check it before building an event payload, so an idle bus costs
// one atomic load per site. nil-safe.
func (b *Bus) Active() bool {
	return b != nil && b.active.Load() > 0
}

// Publish delivers one event to every matching subscriber. It never
// blocks: a full subscriber ring sheds its oldest event instead. With
// no subscriber attached the call is a no-op (the topic sequence does
// not advance — use Emit when the event must exist regardless, e.g. for
// a replayable backlog). nil-safe.
func (b *Bus) Publish(topic, typ string, data map[string]any) {
	if !b.Active() {
		return
	}
	b.emit(topic, typ, data)
}

// Emit is Publish that always materializes the event: the topic
// sequence advances and the built event is returned even when nobody is
// subscribed. The per-job lifecycle backlog uses it so replayed and
// live events share one numbering.
func (b *Bus) Emit(topic, typ string, data map[string]any) Event {
	return b.emit(topic, typ, data)
}

func (b *Bus) emit(topic, typ string, data map[string]any) Event {
	b.mu.Lock()
	b.seq[topic]++
	ev := Event{Seq: b.seq[topic], Topic: topic, Type: typ, Time: time.Now().UTC(), Data: data}
	for s := range b.subs {
		if s.matches(topic) {
			s.push(ev)
		}
	}
	b.mu.Unlock()
	b.published.Add(1)
	return ev
}

// Subscribe attaches a subscriber with a ring of the given capacity
// (non-positive = DefaultBuffer). topics filters delivery: exact topic
// names, or prefix patterns ending in "*" ("job/*" matches every job
// stream); no topics = the full firehose. Close the subscriber to
// detach.
func (b *Bus) Subscribe(buf int, topics ...string) *Subscriber {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	var filter []string
	for _, t := range topics {
		if t != "" {
			filter = append(filter, t)
		}
	}
	s := &Subscriber{
		bus:    b,
		topics: filter,
		ring:   make([]Event, buf),
		wake:   make(chan struct{}, 1),
	}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	b.active.Add(1)
	return s
}

// Stats is a snapshot of the bus counters.
type Stats struct {
	// Published counts events materialized on the bus (Publish with at
	// least one subscriber, plus every Emit).
	Published int64
	// Dropped counts events shed from subscriber rings (drop-oldest).
	Dropped int64
	// Subscribers is the live subscriber count.
	Subscribers int64
}

// Stats returns the current counters. nil-safe.
func (b *Bus) Stats() Stats {
	if b == nil {
		return Stats{}
	}
	return Stats{
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: b.active.Load(),
	}
}

// Topic binds a topic name into a Publisher — the one-field handle the
// instrumented packages hold. nil-safe (a nil bus yields a nil,
// no-op publisher).
func (b *Bus) Topic(topic string) *Publisher {
	if b == nil {
		return nil
	}
	return &Publisher{bus: b, topic: topic}
}

// Publisher is a bus pre-bound to one topic. Its method set satisfies
// the EventSink interfaces the instrumented packages (experiments,
// artifact) declare, without those packages importing this one. A nil
// *Publisher is a valid no-op.
type Publisher struct {
	bus   *Bus
	topic string
}

// Active reports whether publishing now could reach anyone — the
// zero-cost gate call sites use to skip building the payload map.
func (p *Publisher) Active() bool {
	return p != nil && p.bus.Active()
}

// Event publishes typ with data on the bound topic. No-op without
// subscribers.
func (p *Publisher) Event(typ string, data map[string]any) {
	if p == nil {
		return
	}
	p.bus.Publish(p.topic, typ, data)
}

// Subscriber is one attached consumer: a fixed ring of pending events,
// drained with Next (non-blocking) or Recv (blocking), woken through
// Wait. All methods are safe for concurrent use, though a subscriber
// normally has one reader.
type Subscriber struct {
	bus    *Bus
	topics []string // nil = all; entries ending in "*" match prefixes

	mu      sync.Mutex
	ring    []Event
	head, n int
	dropped uint64
	closed  bool
	wake    chan struct{} // 1-buffered; closed on Close
}

// matches reports whether the subscriber wants topic. Called under the
// bus lock; topics is immutable after Subscribe so no subscriber lock
// is needed.
func (s *Subscriber) matches(topic string) bool {
	if len(s.topics) == 0 {
		return true
	}
	for _, t := range s.topics {
		if t == topic {
			return true
		}
		if n := len(t); n > 0 && t[n-1] == '*' && len(topic) >= n-1 && topic[:n-1] == t[:n-1] {
			return true
		}
	}
	return false
}

// push appends ev, shedding the oldest buffered event when the ring is
// full. Called under the bus lock (bus.mu → sub.mu, the one lock order
// everywhere).
func (s *Subscriber) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
		s.bus.dropped.Add(1)
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	// The wake send stays under the mutex so it can never race the
	// close(wake) in Close (which also holds it).
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.mu.Unlock()
}

// Next pops the oldest pending event. ok is false when nothing is
// pending — check Closed to distinguish "empty for now" from "detached".
func (s *Subscriber) Next() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Event{}, false
	}
	ev := s.ring[s.head]
	s.ring[s.head] = Event{} // release payload references
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return ev, true
}

// Wait returns a channel that is readable when new events may be
// pending (level-triggered wakeup) and permanently readable once the
// subscriber is closed. Drain Next after each wakeup.
func (s *Subscriber) Wait() <-chan struct{} { return s.wake }

// Recv blocks for the next event, honoring ctx. ok is false when the
// subscriber closed or ctx expired with nothing pending.
func (s *Subscriber) Recv(ctx context.Context) (Event, bool) {
	for {
		if ev, ok := s.Next(); ok {
			return ev, true
		}
		if s.Closed() {
			return Event{}, false
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			// One final drain: an event may have landed between the
			// failed Next and ctx expiring.
			return s.Next()
		}
	}
}

// Dropped reports how many events this subscriber has shed.
func (s *Subscriber) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Closed reports whether the subscriber has been detached.
func (s *Subscriber) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close detaches the subscriber: no further events are delivered, Wait
// becomes permanently readable, and pending events remain drainable via
// Next. Safe to call more than once, and safe concurrently with
// Publish.
func (s *Subscriber) Close() {
	s.bus.mu.Lock()
	if _, live := s.bus.subs[s]; live {
		delete(s.bus.subs, s)
		s.bus.active.Add(-1)
	}
	s.bus.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.wake)
	}
	s.mu.Unlock()
}
