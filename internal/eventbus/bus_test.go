package eventbus

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPerTopicOrdering pins the ordering contract: one topic's events
// carry strictly increasing sequence numbers and arrive in that order;
// an unrelated topic numbers independently.
func TestPerTopicOrdering(t *testing.T) {
	b := New()
	sub := b.Subscribe(64, "a")
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish("a", "tick", map[string]any{"i": i})
		b.Publish("b", "noise", nil)
	}
	for i := 0; i < 10; i++ {
		ev, ok := sub.Next()
		if !ok {
			t.Fatalf("event %d missing", i)
		}
		if ev.Topic != "a" || ev.Seq != uint64(i+1) || ev.Data["i"] != i {
			t.Fatalf("event %d: got topic=%s seq=%d data=%v", i, ev.Topic, ev.Seq, ev.Data)
		}
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("filtered topic leaked through")
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with room to spare", d)
	}
}

// TestSlowSubscriberDropsOldest is the backpressure contract: a full
// ring sheds its oldest events, the publisher never blocks, the drop
// counters account for every shed event, and the survivors are the
// newest ones in order.
func TestSlowSubscriberDropsOldest(t *testing.T) {
	b := New()
	sub := b.Subscribe(4, "t")
	defer sub.Close()
	fast := b.Subscribe(64, "t")
	defer fast.Close()
	for i := 0; i < 10; i++ {
		b.Publish("t", "e", map[string]any{"i": i})
	}
	// The slow ring (cap 4) keeps exactly the last 4, in order.
	for want := 6; want < 10; want++ {
		ev, ok := sub.Next()
		if !ok || ev.Data["i"] != want {
			t.Fatalf("want survivor %d, got %v (ok=%v)", want, ev.Data, ok)
		}
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("ring held more than its capacity")
	}
	if d := sub.Dropped(); d != 6 {
		t.Fatalf("slow subscriber dropped %d, want 6", d)
	}
	// The fast subscriber is untouched by its neighbor's backpressure.
	if d := fast.Dropped(); d != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", d)
	}
	for i := 0; i < 10; i++ {
		if ev, ok := fast.Next(); !ok || ev.Data["i"] != i {
			t.Fatalf("fast subscriber event %d: got %v (ok=%v)", i, ev.Data, ok)
		}
	}
	st := b.Stats()
	if st.Published != 10 || st.Dropped != 6 || st.Subscribers != 2 {
		t.Fatalf("stats = %+v, want published=10 dropped=6 subscribers=2", st)
	}
}

// TestPublishWithoutSubscribersIsNoop pins the idle fast path: no
// subscriber means Publish materializes nothing and counts nothing.
func TestPublishWithoutSubscribersIsNoop(t *testing.T) {
	b := New()
	if b.Active() {
		t.Fatal("empty bus claims to be active")
	}
	b.Publish("t", "e", nil)
	if st := b.Stats(); st.Published != 0 {
		t.Fatalf("idle publish was counted: %+v", st)
	}
	// Emit always materializes — the per-job backlog depends on it.
	ev := b.Emit("t", "e", nil)
	if ev.Seq != 1 {
		t.Fatalf("Emit seq = %d, want 1", ev.Seq)
	}
	if st := b.Stats(); st.Published != 1 {
		t.Fatalf("Emit not counted: %+v", st)
	}
	var nilBus *Bus
	nilBus.Publish("t", "e", nil) // must not panic
	if nilBus.Active() {
		t.Fatal("nil bus active")
	}
	var nilPub *Publisher
	nilPub.Event("e", nil) // must not panic
	if nilPub.Active() {
		t.Fatal("nil publisher active")
	}
}

// TestTopicPrefixFilter covers the "job/*" wildcard used by firehose
// consumers watching every job stream.
func TestTopicPrefixFilter(t *testing.T) {
	b := New()
	sub := b.Subscribe(16, "job/*")
	defer sub.Close()
	b.Publish("job/job-00000001", "started", nil)
	b.Publish("jobless", "noise", nil)
	b.Publish("job/job-00000002", "done", nil)
	ev1, ok1 := sub.Next()
	ev2, ok2 := sub.Next()
	if !ok1 || !ok2 || ev1.Topic != "job/job-00000001" || ev2.Topic != "job/job-00000002" {
		t.Fatalf("prefix filter delivered %v / %v", ev1, ev2)
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("non-matching topic leaked through the prefix filter")
	}
}

// TestCloseWakesWaiter: a blocked Recv returns promptly when the
// subscriber closes, and pending events stay drainable after Close.
func TestCloseWakesWaiter(t *testing.T) {
	b := New()
	sub := b.Subscribe(8, "t")
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Recv(context.Background())
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	sub.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned an event from a closed, empty subscriber")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not wake on Close")
	}
	// Pending events survive Close.
	sub2 := b.Subscribe(8, "t")
	b.Publish("t", "e", nil)
	sub2.Close()
	if _, ok := sub2.Next(); !ok {
		t.Fatal("pending event lost on Close")
	}
	b.Publish("t", "late", nil) // must not panic or deliver
	if _, ok := sub2.Next(); ok {
		t.Fatal("closed subscriber received a new event")
	}
}

// TestRecvContext: Recv honors context cancellation.
func TestRecvContext(t *testing.T) {
	b := New()
	sub := b.Subscribe(8, "t")
	defer sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, ok := sub.Recv(ctx); ok {
		t.Fatal("Recv invented an event")
	}
}

// TestUnsubscribeDuringPublishHammer races Close against concurrent
// publishers: no panic (the wake-channel close is serialized with the
// wake send), no deadlock, and the books still balance. Run with
// -race in CI.
func TestUnsubscribeDuringPublishHammer(t *testing.T) {
	b := New()
	const publishers = 4
	const rounds = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Publish(fmt.Sprintf("t%d", p%2), "e", map[string]any{"i": i})
			}
		}(p)
	}
	for r := 0; r < rounds; r++ {
		subs := make([]*Subscriber, 8)
		for i := range subs {
			subs[i] = b.Subscribe(4, fmt.Sprintf("t%d", i%2))
		}
		var cw sync.WaitGroup
		for _, s := range subs {
			cw.Add(1)
			go func(s *Subscriber) {
				defer cw.Done()
				s.Next()
				s.Close()
				s.Close() // double-close is fine
			}(s)
		}
		cw.Wait()
	}
	close(stop)
	wg.Wait()
	if n := b.Stats().Subscribers; n != 0 {
		t.Fatalf("%d subscribers leaked", n)
	}
}

// TestConcurrentOrderingPerTopic: under concurrent publishers on one
// topic, every subscriber still observes strictly increasing sequence
// numbers (gaps allowed — drops — inversions never).
func TestConcurrentOrderingPerTopic(t *testing.T) {
	b := New()
	subs := make([]*Subscriber, 4)
	for i := range subs {
		subs[i] = b.Subscribe(1024, "t")
		defer subs[i].Close()
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish("t", "e", nil)
			}
		}()
	}
	wg.Wait()
	for si, s := range subs {
		var last uint64
		n := 0
		for {
			ev, ok := s.Next()
			if !ok {
				break
			}
			if ev.Seq <= last {
				t.Fatalf("subscriber %d: seq %d after %d", si, ev.Seq, last)
			}
			last = ev.Seq
			n++
		}
		if n != 800 {
			t.Fatalf("subscriber %d saw %d/800 events with a big ring", si, n)
		}
	}
}

// BenchmarkPublishNoSubscribers is the zero-cost claim for the
// instrumented hot paths: publishing into an idle bus must be a
// single atomic load, no allocation.
func BenchmarkPublishNoSubscribers(bm *testing.B) {
	b := New()
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		b.Publish("t", "e", nil)
	}
}

// BenchmarkPublishOneSubscriber prices the attached path.
func BenchmarkPublishOneSubscriber(bm *testing.B) {
	b := New()
	sub := b.Subscribe(256, "t")
	defer sub.Close()
	bm.ReportAllocs()
	for i := 0; i < bm.N; i++ {
		b.Publish("t", "e", nil)
	}
}
