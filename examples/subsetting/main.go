// Subsetting: the paper's §3 end-to-end — characterize the 77-workload
// BigDataBench-like roster with 45 metrics each, normalize, run PCA
// and K-means, and print the 17 representative workloads with the
// cluster sizes they stand for (Table 2's parenthesized counts).
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	roster := repro.Roster77()
	fmt.Printf("characterizing %d workloads...\n", len(roster))
	profiles := repro.Characterize(roster, repro.XeonE5645(), 600_000)
	red, err := repro.Reduce(profiles, 17)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("PCA kept %d dimensions (%.1f%% of variance); %d clusters:\n\n",
		red.Dimensions, red.Explained*100, red.K)
	for i, r := range red.Representatives() {
		fmt.Printf("%2d. %-22s represents %2d workloads\n", i+1, r.ID, r.Count)
	}
}
