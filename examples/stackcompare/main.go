// Stackcompare: the paper's §5.5 software-stack study — the same
// WordCount algorithm under the thin MPI stack and the thick Hadoop
// and Spark stacks, showing the order-of-magnitude L1I difference and
// the IPC gap that motivate the paper's hardware/software co-design
// conclusion.
package main

import (
	"fmt"

	"repro"
	"repro/internal/metrics"
)

func main() {
	pick := func(list []repro.Workload, id string) repro.Workload {
		for _, w := range list {
			if w.ID == id {
				return w
			}
		}
		panic("workload not found: " + id)
	}
	rows := []repro.Workload{
		pick(repro.MPI6(), "M-WordCount"),
		pick(repro.Representative17(), "H-WordCount"),
		pick(repro.Representative17(), "S-WordCount"),
	}
	fmt.Printf("%-14s %6s %9s %8s %8s %8s\n",
		"workload", "IPC", "L1I MPKI", "L2 MPKI", "L3 MPKI", "front%")
	for _, w := range rows {
		v := repro.Run(w, repro.XeonE5645(), 2_000_000)
		fmt.Printf("%-14s %6.2f %9.1f %8.1f %8.2f %8.1f\n",
			w.ID, v[metrics.IPC], v[metrics.L1IMPKI], v[metrics.L2MPKI],
			v[metrics.L3MPKI], v[metrics.FrontStallRatio]*100)
	}
	fmt.Println("\npaper (Fig. 3-4): M-WordCount IPC 1.8 / L1I 2;")
	fmt.Println("Hadoop IPC 1.1 / L1I 7; Spark IPC 0.9 / L1I 17.")
}
