// Quickstart: run one big data workload (Spark WordCount) on the
// modelled Xeon E5645 and print its headline micro-architectural
// characterization — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"repro"
	"repro/internal/metrics"
)

func main() {
	var wc repro.Workload
	for _, w := range repro.Representative17() {
		if w.ID == "S-WordCount" {
			wc = w
		}
	}
	v := repro.Run(wc, repro.XeonE5645(), 2_000_000)
	fmt.Println("S-WordCount on the modelled Xeon E5645:")
	fmt.Printf("  IPC                 %6.2f\n", v[metrics.IPC])
	fmt.Printf("  branch ratio        %6.1f %%\n", v[metrics.MixBranch]*100)
	fmt.Printf("  integer ratio       %6.1f %%\n", v[metrics.MixInt]*100)
	fmt.Printf("  L1I MPKI            %6.1f\n", v[metrics.L1IMPKI])
	fmt.Printf("  L2 MPKI             %6.1f\n", v[metrics.L2MPKI])
	fmt.Printf("  L3 MPKI             %6.2f\n", v[metrics.L3MPKI])
	fmt.Printf("  mispredict ratio    %6.2f %%\n", v[metrics.BrMispredictRatio]*100)
	fmt.Printf("  front-end stalls    %6.1f %% of cycles\n", v[metrics.FrontStallRatio]*100)
	fmt.Printf("  code footprint      %6.0f KB\n", v[metrics.CodeFootprintKB])
}
