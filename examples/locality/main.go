// Locality: the paper's §5.4 footprint study (Figs. 6 and 9) — sweep
// the L1 instruction cache from 16 KB to 8 MB under the Hadoop
// representatives, PARSEC and the MPI implementations, and print the
// miss-ratio curves whose knees give the instruction footprints
// (Hadoop ≈ 1 MB, PARSEC and MPI ≈ 128 KB).
package main

import (
	"os"

	"repro/internal/experiments"
)

func main() {
	s := experiments.NewSession(experiments.Options{
		Budget: 1_000_000, SweepBudget: 800_000, RosterBudget: 400_000,
	})
	r := experiments.Fig9(s)
	r.Render(os.Stdout)
}
