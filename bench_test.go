package repro

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artefact and reports the headline numbers as
// custom benchmark metrics (paper targets in the metric names where
// a single number exists), so
//
//	go test -bench=. -benchmem
//
// prints the full paper-vs-measured picture. The heavyweight profiled
// runs are shared through a lazily-built session.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/artifact/artifactd"
	"repro/internal/artifact/httpstore"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim/machine"
	"repro/internal/sim/trace"
	"repro/internal/workloads"
)

var (
	benchOnce    sync.Once
	benchSession *experiments.Session
)

func session() *experiments.Session {
	benchOnce.Do(func() {
		opt := experiments.Default()
		// Benches prioritize breadth over per-run length.
		opt.Budget = 1_500_000
		opt.SweepBudget = 600_000
		opt.RosterBudget = 500_000
		benchSession = experiments.NewSession(opt)
	})
	return benchSession
}

func BenchmarkTable1DataSets(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table1())
	}
	b.ReportMetric(float64(rows), "datasets")
}

func BenchmarkTable2Classification(b *testing.B) {
	s := session()
	var cpu, io, hybrid int
	for i := 0; i < b.N; i++ {
		cpu, io, hybrid = 0, 0, 0
		for _, r := range experiments.Table2(s) {
			switch r.System.String() {
			case "CPU-Intensive":
				cpu++
			case "IO-Intensive":
				io++
			default:
				hybrid++
			}
		}
	}
	b.ReportMetric(float64(cpu), "cpu-intensive")
	b.ReportMetric(float64(io), "io-intensive")
	b.ReportMetric(float64(hybrid), "hybrid")
}

func BenchmarkTable4BranchPrediction(b *testing.B) {
	s := session()
	var r experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(s)
	}
	b.ReportMetric(r.AtomAvg*100, "atom-mispredict%(paper:7.8)")
	b.ReportMetric(r.XeonAvg*100, "xeon-mispredict%(paper:2.8)")
	b.ReportMetric(r.AtomAvg/r.XeonAvg, "ratio(paper:2.8)")
}

func BenchmarkFig1InstructionMix(b *testing.B) {
	s := session()
	var f experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig1(s)
	}
	b.ReportMetric(f.BigDataBranchAvg*100, "branch%(paper:18.7)")
	b.ReportMetric(f.BigDataIntAvg*100, "integer%(paper:38)")
	b.ReportMetric(f.DataMovementShare*100, "datamove%(paper:73)")
	b.ReportMetric(f.WithBranches*100, "datamove+br%(paper:92)")
	b.ReportMetric(f.AvgGFLOPS, "GFLOPS(paper:0.1)")
}

func BenchmarkFig2IntegerBreakdown(b *testing.B) {
	s := session()
	var f experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		f = experiments.Fig2(s)
	}
	b.ReportMetric(f.IntAddr*100, "int-addr%(paper:64)")
	b.ReportMetric(f.FPAddr*100, "fp-addr%(paper:18)")
	b.ReportMetric(f.Other*100, "other%(paper:18)")
}

func fig3Value(f experiments.FigSeriesResult, name string) float64 {
	for _, r := range f.Rows {
		if r.Name == name {
			return r.Values[0]
		}
	}
	return 0
}

func BenchmarkFig3IPC(b *testing.B) {
	s := session()
	var f experiments.FigSeriesResult
	for i := 0; i < b.N; i++ {
		f = experiments.Fig3(s)
	}
	b.ReportMetric(f.Averages["big data (17 reps)"][0], "bd-IPC(paper:1.28)")
	b.ReportMetric(fig3Value(f, "M-WordCount"), "M-WC-IPC(paper:1.8)")
	b.ReportMetric(fig3Value(f, "H-WordCount"), "H-WC-IPC(paper:1.1)")
	b.ReportMetric(fig3Value(f, "S-WordCount"), "S-WC-IPC(paper:0.9)")
	b.ReportMetric(fig3Value(f, "H-Read"), "H-Read-IPC(paper:0.8)")
	b.ReportMetric(fig3Value(f, "HPCC"), "HPCC-IPC(paper:1.5)")
	b.ReportMetric(fig3Value(f, "PARSEC"), "PARSEC-IPC(paper:1.28)")
	b.ReportMetric(fig3Value(f, "SPECINT"), "SPECINT-IPC(paper:0.9)")
	b.ReportMetric(fig3Value(f, "SPECFP"), "SPECFP-IPC(paper:1.1)")
}

func BenchmarkFig4CacheBehaviour(b *testing.B) {
	s := session()
	var f experiments.FigSeriesResult
	for i := 0; i < b.N; i++ {
		f = experiments.Fig4(s)
	}
	get := func(name string, k int) float64 {
		for _, r := range f.Rows {
			if r.Name == name {
				return r.Values[k]
			}
		}
		return 0
	}
	b.ReportMetric(f.Averages["big data (17 reps)"][0], "bd-L1I-MPKI(paper:15)")
	b.ReportMetric(f.Averages["service"][0], "service-L1I(paper:51)")
	b.ReportMetric(get("CloudSuite", 0), "cloudsuite-L1I(paper:32)")
	b.ReportMetric(get("M-WordCount", 0), "M-WC-L1I(paper:2)")
	b.ReportMetric(get("H-WordCount", 0), "H-WC-L1I(paper:7)")
	b.ReportMetric(get("S-WordCount", 0), "S-WC-L1I(paper:17)")
	b.ReportMetric(f.Averages["big data (17 reps)"][2], "bd-L2-MPKI(paper:11)")
	b.ReportMetric(f.Averages["big data (17 reps)"][3], "bd-L3-MPKI(paper:1.2)")
}

func BenchmarkFig5TLBBehaviour(b *testing.B) {
	s := session()
	var f experiments.FigSeriesResult
	for i := 0; i < b.N; i++ {
		f = experiments.Fig5(s)
	}
	b.ReportMetric(f.Averages["big data (17 reps)"][0], "bd-ITLB-MPKI(paper:0.05)")
	b.ReportMetric(f.Averages["service"][0], "service-ITLB(paper:0.2)")
	b.ReportMetric(f.Averages["big data (17 reps)"][1], "bd-DTLB-MPKI(paper:0.9)")
	b.ReportMetric(f.Averages["service"][1], "service-DTLB(paper:1.8)")
}

func benchSweep(b *testing.B, run func(*experiments.Session) experiments.SweepResult, curves []string) {
	s := session()
	var r experiments.SweepResult
	for i := 0; i < b.N; i++ {
		r = run(s)
	}
	for _, c := range curves {
		b.ReportMetric(float64(r.Knee(c, 0.25)), c+"-kneeKB")
		b.ReportMetric(r.Curves[c][0], c+"-missRatio@16KB")
	}
}

func BenchmarkFig6ICacheFootprint(b *testing.B) {
	benchSweep(b, experiments.Fig6, []string{"Hadoop-workloads", "PARSEC-workloads"})
}

func BenchmarkFig7DCacheFootprint(b *testing.B) {
	benchSweep(b, experiments.Fig7, []string{"Hadoop-workloads", "PARSEC-workloads"})
}

func BenchmarkFig8CombinedFootprint(b *testing.B) {
	benchSweep(b, experiments.Fig8, []string{"Hadoop-workloads", "PARSEC-workloads"})
}

func BenchmarkFig9MPIFootprint(b *testing.B) {
	benchSweep(b, experiments.Fig9, []string{"Hadoop-workloads", "PARSEC-workloads", "MPI-workloads"})
}

func BenchmarkSection3Reduction(b *testing.B) {
	s := session()
	var clusters, dims int
	var explained float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Reduction(s)
		if err != nil {
			b.Fatal(err)
		}
		clusters = r.Reduction.K
		dims = r.Reduction.Dimensions
		explained = r.Reduction.Explained
	}
	b.ReportMetric(float64(clusters), "clusters(paper:17)")
	b.ReportMetric(float64(dims), "pca-dims")
	b.ReportMetric(explained*100, "variance%")
}

func BenchmarkSection55StackImpact(b *testing.B) {
	s := session()
	var r experiments.StackImpactResult
	for i := 0; i < b.N; i++ {
		r = experiments.StackImpact(s)
	}
	b.ReportMetric(r.MPIAvgIPC, "mpi-IPC(paper:1.4)")
	b.ReportMetric(r.OtherAvgIPC, "jvm-IPC(paper:1.16)")
	b.ReportMetric(r.MPIAvgL1I, "mpi-L1I(paper:3.4)")
	b.ReportMetric(r.OtherAvgL1I, "jvm-L1I(paper:12.6)")
}

// BenchmarkAblationLoopPredictor quantifies the loop predictor's
// contribution to the Table 4 gap: the 17 representatives on the Xeon
// model with and without the loop component.
func BenchmarkAblationLoopPredictor(b *testing.B) {
	s := session()
	var with, without float64
	for i := 0; i < b.N; i++ {
		with, without = experiments.AblationLoopPredictor(s)
	}
	b.ReportMetric(with*100, "mispredict%-with-loop")
	b.ReportMetric(without*100, "mispredict%-without-loop")
}

// BenchmarkEngineSerial regenerates the full paper batch one
// experiment at a time in dependency order — the reference the
// concurrent engine is compared against.
func BenchmarkEngineSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := &experiments.Engine{Session: experiments.NewSession(experiments.Quick())}
		res, err := e.RunSerial()
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("engine produced no results")
		}
	}
}

// BenchmarkEngineParallel regenerates the full paper batch as the
// dependency-aware concurrent schedule over a bounded worker pool.
func BenchmarkEngineParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := &experiments.Engine{Session: experiments.NewSession(experiments.Quick())}
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("engine produced no results")
		}
	}
}

// BenchmarkSweepFiguresSerial is the seed's Fig. 6-9 path, retained
// verbatim as the pre-PR reference: every curve re-traces its workload
// group (10 group sweeps, ~58 trace passes), each pass delivered
// per-instruction with every cache accessed inline.
func BenchmarkSweepFiguresSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := experiments.SerialSweepFigures(experiments.NewSession(experiments.Quick()))
		if len(figs[3].Curves["MPI-workloads"]) == 0 {
			b.Fatal("missing curves")
		}
	}
}

// BenchmarkSweepFiguresBlocked is the engine path: one trace pass per
// workload (blocks decoded once into packed access streams, consumed
// by the default stack-distance engine), all three views extracted
// from it and shared by the four figures. The equivalence tests prove
// its curves bit-identical to the serial reference.
func BenchmarkSweepFiguresBlocked(b *testing.B) {
	var passes int64
	for i := 0; i < b.N; i++ {
		s := experiments.NewSession(experiments.Quick())
		experiments.Fig6(s)
		experiments.Fig7(s)
		experiments.Fig8(s)
		if len(experiments.Fig9(s).Curves["MPI-workloads"]) == 0 {
			b.Fatal("missing curves")
		}
		passes = s.TracePasses()
	}
	b.ReportMetric(float64(passes), "trace-passes")
}

// sweepPassBudget sizes the single-pass replay benchmarks.
const sweepPassBudget = 600_000

// BenchmarkSweepPassSerial measures ONE cold sweep trace pass through
// the retained per-instruction path — the pre-PR hot loop: a virtual
// probe call per instruction, every cache accessed inline.
func BenchmarkSweepPassSerial(b *testing.B) {
	w := Representative17()[14] // H-WordCount
	for i := 0; i < b.N; i++ {
		sw := machine.NewSweep(machine.DefaultSweepSizesKB)
		workloads.Run(w, trace.Unblocked(sw), sweepPassBudget)
	}
	b.ReportMetric(sweepPassBudget*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSweepPassBlocked measures the same pass through the block
// pipeline: per-block decode into packed run-merged access streams,
// caches replayed via the bulk path (parallel fan-out when cores
// allow).
func BenchmarkSweepPassBlocked(b *testing.B) {
	w := Representative17()[14]
	for i := 0; i < b.N; i++ {
		sw := machine.NewSweep(machine.DefaultSweepSizesKB)
		workloads.Run(w, sw, sweepPassBudget)
	}
	b.ReportMetric(sweepPassBudget*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSweepStackDist measures ONE cold sweep trace pass through
// the stack-distance engine at the default geometry — the same pass
// BenchmarkSweepPassBlocked prices through concrete-cache replay. The
// differential tests prove the curves bit-identical; this records what
// the swap costs (or saves) on the single-geometry hot path.
func BenchmarkSweepStackDist(b *testing.B) {
	w := Representative17()[14] // H-WordCount
	for i := 0; i < b.N; i++ {
		sw, err := machine.NewStackSweep(0, machine.SweepGeometry{SizesKB: machine.DefaultSweepSizesKB})
		if err != nil {
			b.Fatal(err)
		}
		workloads.Run(w, sw, sweepPassBudget)
	}
	b.ReportMetric(sweepPassBudget*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkSweepMultiGeometry prices geometry count under the
// stack-distance engine: one pass answering 1 vs 4 associativities
// over the default size ladder. Extra geometries only add per-set
// stacks (more histogram buckets, same trace work), so geoms-4 must
// scale near-flat relative to geoms-1 — the benchguard ratio pins it.
func BenchmarkSweepMultiGeometry(b *testing.B) {
	w := Representative17()[14] // H-WordCount
	geoms := []machine.SweepGeometry{
		{SizesKB: machine.DefaultSweepSizesKB, Ways: machine.DefaultSweepWays},
		{SizesKB: machine.DefaultSweepSizesKB, Ways: 1},
		{SizesKB: machine.DefaultSweepSizesKB, Ways: 2},
		{SizesKB: machine.DefaultSweepSizesKB, Ways: 16},
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("geoms-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw, err := machine.NewStackSweep(0, geoms[:n]...)
				if err != nil {
					b.Fatal(err)
				}
				workloads.Run(w, sw, sweepPassBudget)
			}
			b.ReportMetric(sweepPassBudget*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
		})
	}
}

// BenchmarkSweepFanout measures one cold sweep trace pass with the
// per-cache block-replay fan-out pinned to 1, 2, 4 and 8 in-flight
// replays — the numbers behind the Sweep.Parallelism default
// (DESIGN.md "Sweep fan-out parallelism"). The fan-out distributes 30
// independent caches per ~4096-instruction block across the shared
// replay pool, so the win tracks physical cores: on a single-core host
// all widths converge on the serial time (the pool adds only
// scheduling overhead), and wider hosts shorten the per-block barrier
// proportionally. workers-1 replays serially in the caller (no pool
// hop) and is the floor every width must not regress below on one
// core.
func BenchmarkSweepFanout(b *testing.B) {
	w := Representative17()[14] // H-WordCount
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw := machine.NewSweep(machine.DefaultSweepSizesKB)
				sw.Parallelism = workers
				workloads.Run(w, sw, sweepPassBudget)
			}
			b.ReportMetric(sweepPassBudget*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
		})
	}
}

// BenchmarkServeWarmUnit measures the daemon's warm fast path: one
// GET /units answered straight from the store (artifact.Peek), no
// session, no engine — the request shape a warmed reprod serves under
// load.
func BenchmarkServeWarmUnit(b *testing.B) {
	opt := experiments.Options{Budget: 50_000, SweepBudget: 25_000, RosterBudget: 10_000}
	srv, err := serve.New(serve.Config{Opt: opt})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	warm, err := http.Get(ts.URL + "/v1/units/table1")
	if err != nil || warm.StatusCode != 200 {
		b.Fatalf("warmup: %v %v", err, warm)
	}
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/v1/units/table1")
		if err != nil || resp.StatusCode != 200 {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if st := srv.Stats(); st.Computes != 1 {
		b.Fatalf("warm serving recomputed: %+v", st)
	}
}

// BenchmarkWorkloadThroughput measures raw simulation speed (the cost
// of one characterization run).
func BenchmarkWorkloadThroughput(b *testing.B) {
	w := Representative17()[14] // H-WordCount
	cfg := XeonE5645()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(w, cfg, 200_000)
	}
	b.ReportMetric(200_000*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkCharacterizeVector measures the 45-metric collection path.
func BenchmarkCharacterizeVector(b *testing.B) {
	list := MPI6()[:2]
	cfg := XeonE5645()
	for i := 0; i < b.N; i++ {
		profiles := Characterize(list, cfg, 100_000)
		var v Vector = profiles[0].Vector
		if v[metrics.IPC] == 0 {
			b.Fatal("empty vector")
		}
	}
}

// BenchmarkStoreHTTP measures the network tier's round trip: one
// store fill published to an in-process artifactd (PUT), then loaded
// back by a cold store modelling a remote shard (GET + verification).
func BenchmarkStoreHTTP(b *testing.B) {
	srv, err := artifactd.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	payload := make([]float64, 1024) // ~8 KB, the size class of a ProfileRecord
	for i := range payload {
		payload[i] = float64(i) * 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := artifact.KeyOf("bench-http", i)
		writer, err := httpstore.New(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := artifact.Get(artifact.NewWithBackend(writer), key,
			func() ([]float64, error) { return payload, nil }); err != nil {
			b.Fatal(err)
		}
		reader, err := httpstore.New(ts.URL)
		if err != nil {
			b.Fatal(err)
		}
		cold := artifact.NewWithBackend(reader)
		got, err := artifact.Get(cold, key, func() ([]float64, error) {
			return nil, fmt.Errorf("remote entry missed")
		})
		if err != nil || len(got) != len(payload) {
			b.Fatal(err)
		}
	}
	st := srv.Stats()
	b.ReportMetric(float64(st.PutBytes+st.ServedBytes)/float64(b.N), "wire-bytes/op")
}

// BenchmarkRenderWarm measures the fully warm repro path the render
// artefacts enable: every dataset, profile, sweep curve and rendered
// unit loads from a persisted store, so an engine pass is pure I/O —
// zero trace passes, zero profile runs, zero renders.
func BenchmarkRenderWarm(b *testing.B) {
	dir := b.TempDir()
	opt := experiments.Options{Budget: 50_000, SweepBudget: 25_000, RosterBudget: 10_000}
	warmup := func() *experiments.Session {
		st, err := artifact.NewDisk(dir)
		if err != nil {
			b.Fatal(err)
		}
		prev := datagen.SetStore(st)
		b.Cleanup(func() { datagen.SetStore(prev) })
		s := experiments.NewSession(opt)
		s.Store = st
		if _, err := (&experiments.Engine{Session: s}).Run(); err != nil {
			b.Fatal(err)
		}
		return s
	}
	warmup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := warmup()
		if s.TracePasses() != 0 || s.ProfileRuns() != 0 || s.Renders() != 0 {
			b.Fatalf("warm pass recomputed: %d trace / %d profile / %d renders",
				s.TracePasses(), s.ProfileRuns(), s.Renders())
		}
	}
}
